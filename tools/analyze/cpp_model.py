"""Lightweight C++ source model shared by every amm_analyze check.

This is the *internal* front end: a tokenizer plus a handful of structural
extractors (enums, switches, function bodies, loops, declarations, constant
folding) that turn a translation unit into facts the checks consume. It is
deliberately not a full C++ parser — it understands exactly the shapes this
repository uses (see docs/ANALYSIS.md §5) and is the engine that runs on
machines without libclang. When `clang.cindex` is importable, clang_front.py
replaces the *fact extraction* for enums/switches/type-driven declarations
with real AST queries; the byte-accounting and lock-region analyses are
syntactic in both engines.

Guarantees the checks rely on:
  * comments and string/char literals never produce tokens (so prose cannot
    trigger rules), but `analyze:allow(...)` comments are collected per line;
  * every brace/paren/bracket is matched, so block extents are exact;
  * enum and function extraction records the enclosing namespace/class path.
"""

from __future__ import annotations

import os
import re
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple


class Token(NamedTuple):
    kind: str  # 'id' | 'num' | 'punct'
    value: str
    line: int


ALLOW_RE = re.compile(r"//\s*analyze:allow\((?P<rules>[\w,\s-]+)\)")
ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
ID_CONT = ID_START | set("0123456789")
MULTI_PUNCT = (
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>", "<=", ">=",
    "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=",
)


def lex(text: str) -> Tuple[List[Token], Dict[int, Set[str]]]:
    """Tokenizes C++ source; returns (tokens, allow-lines).

    allow-lines maps a 1-based line number to the set of rule names named in
    an `// analyze:allow(rule[, rule...])` comment on that line.
    """
    allow: Dict[int, Set[str]] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        m = ALLOW_RE.search(raw)
        if m:
            allow[lineno] = {r.strip() for r in m.group("rules").split(",") if r.strip()}

    tokens: List[Token] = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                i = n if j < 0 else j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                j = n if j < 0 else j + 2
                line += text.count("\n", i, j)
                i = j
                continue
        # Preprocessor directives: skip the (possibly continued) line.
        if c == "#" and (not tokens or tokens[-1].line != line):
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    i = n
                    break
                if text[j - 1] == "\\":
                    line += 1
                    i = j + 1
                    continue
                i = j  # leave the newline for the main loop
                break
            continue
        # Raw strings: R"delim( ... )delim"
        if c == "R" and text[i : i + 2] == 'R"':
            m = re.compile(r'R"([^()\\ ]{0,16})\(').match(text, i)
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, m.end())
                j = n if j < 0 else j + len(close)
                line += text.count("\n", i, j)
                i = j
                continue
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
            continue
        if c in ID_START:
            j = i + 1
            while j < n and text[j] in ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i + 1
            while j < n and (text[j] in ID_CONT or text[j] in ".'"):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        for p in MULTI_PUNCT:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens, allow


def match_forward(tokens: Sequence[Token], i: int, open_: str, close: str) -> int:
    """Index of the token closing the bracket opened at `i` (or len(tokens))."""
    depth = 0
    for j in range(i, len(tokens)):
        v = tokens[j].value
        if v == open_:
            depth += 1
        elif v == close:
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)


class EnumDef(NamedTuple):
    path: Tuple[str, ...]  # enclosing namespaces/classes + enum name
    enumerators: Tuple[str, ...]
    file: str
    line: int

    @property
    def name(self) -> str:
        return self.path[-1]


class SwitchStmt(NamedTuple):
    cond: Tuple[str, ...]  # condition token values
    cases: Tuple[Tuple[str, ...], ...]  # per case: the label's token values
    has_default: bool
    line: int
    default_line: int
    body: Tuple[int, int]  # token index range [open brace, close brace]


class Function(NamedTuple):
    name: str  # unqualified
    qual: Tuple[str, ...]  # qualifier path, e.g. ('Decoder',) for Decoder::get_u8
    scope: Tuple[str, ...]  # enclosing namespace/class path at definition
    params: Tuple[int, int]  # token range of the parameter list parens
    body: Tuple[int, int]  # token range [open brace, close brace]
    line: int

    def key(self) -> str:
        return "::".join(self.qual + (self.name,))


class VarDecl(NamedTuple):
    name: str
    type_text: str  # flattened declared type
    owner: Tuple[str, ...]  # enclosing class path ('' level entries omitted)
    file: str
    line: int


class SourceFile:
    """One parsed file: tokens plus the structural facts extracted from it."""

    def __init__(self, path: str, text: str, display: Optional[str] = None):
        self.path = path
        self.display = display or path
        self.text = text
        self.tokens, self.allow = lex(text)
        self._scopes = self._scope_map()
        self.enums = self._extract_enums()
        self.functions = self._extract_functions()
        self.switches = self._extract_switches()

    def allowed(self, line: int, rule: str) -> bool:
        """A finding is suppressed by an allow comment on its line or the
        immediately preceding line (for multi-line statements)."""
        for candidate in (line, line - 1):
            if rule in self.allow.get(candidate, set()):
                return True
        return False

    # ---- scope tracking ----

    def _scope_map(self) -> List[Tuple[str, ...]]:
        """Per-token enclosing namespace/class path (blocks add no name)."""
        scopes: List[Tuple[str, ...]] = []
        stack: List[Tuple[str, bool]] = []  # (name, named?) per open brace
        toks = self.tokens
        pending: Optional[str] = None  # name to attach to the next '{'
        i = 0
        while i < len(toks):
            t = toks[i]
            scopes.append(tuple(name for name, named in stack if named))
            if t.kind == "id" and t.value in ("namespace", "class", "struct", "union"):
                # `namespace a::b {` / `class X final : base {` / fwd decls.
                j = i + 1
                name_parts: List[str] = []
                while j < len(toks) and (toks[j].kind == "id" or toks[j].value == "::"):
                    if toks[j].kind == "id" and toks[j].value not in ("final", "alignas"):
                        name_parts.append(toks[j].value)
                    j += 1
                # Skip base-clause / attributes up to '{' or ';' or '<'.
                k = j
                depth = 0
                while k < len(toks):
                    v = toks[k].value
                    if v in "(<[":
                        depth += 1
                    elif v in ")>]":
                        depth -= 1
                    elif depth == 0 and v in "{;=":
                        break
                    k += 1
                if k < len(toks) and toks[k].value == "{" and name_parts:
                    pending = name_parts[-1]
            elif t.value == "{":
                stack.append((pending or "", pending is not None))
                pending = None
            elif t.value == "}":
                if stack:
                    stack.pop()
            elif t.value == ";":
                pending = None
            i += 1
        return scopes

    def scope_at(self, index: int) -> Tuple[str, ...]:
        return self._scopes[index] if index < len(self._scopes) else ()

    # ---- enums ----

    def _extract_enums(self) -> List[EnumDef]:
        enums: List[EnumDef] = []
        toks = self.tokens
        i = 0
        while i < len(toks):
            if toks[i].kind == "id" and toks[i].value == "enum":
                j = i + 1
                if j < len(toks) and toks[j].value in ("class", "struct"):
                    j += 1
                if j < len(toks) and toks[j].kind == "id":
                    name = toks[j].value
                    k = j + 1
                    if k < len(toks) and toks[k].value == ":":  # underlying type
                        while k < len(toks) and toks[k].value != "{":
                            k += 1
                    if k < len(toks) and toks[k].value == "{":
                        end = match_forward(toks, k, "{", "}")
                        enumerators: List[str] = []
                        expect_name = True
                        depth = 0
                        for t in toks[k + 1 : end]:
                            if t.value in "({[":
                                depth += 1
                            elif t.value in ")}]":
                                depth -= 1
                            elif depth == 0 and t.value == ",":
                                expect_name = True
                            elif depth == 0 and expect_name and t.kind == "id":
                                enumerators.append(t.value)
                                expect_name = False
                        if enumerators:
                            path = self.scope_at(i) + (name,)
                            enums.append(EnumDef(path, tuple(enumerators), self.display, toks[i].line))
                        i = end
            i += 1
        return enums

    # ---- functions (and lambdas) ----

    _NOT_FUNCTION_KEYWORDS = {"if", "for", "while", "switch", "catch", "return", "sizeof",
                              "alignof", "decltype", "static_assert", "noexcept", "new"}
    _SPECIFIERS = {"const", "noexcept", "override", "final", "mutable", "volatile",
                   "constexpr", "&", "&&", "throw"}

    def _extract_functions(self) -> List[Function]:
        funcs: List[Function] = []
        toks = self.tokens
        i = 0
        while i < len(toks):
            if toks[i].value != "(":
                i += 1
                continue
            # The identifier (chain) before the parameter list.
            prev = i - 1
            if prev < 0:
                i += 1
                continue
            is_lambda = toks[prev].value == "]"
            if toks[prev].kind != "id" and not is_lambda:
                i += 1
                continue
            if toks[prev].kind == "id" and toks[prev].value in self._NOT_FUNCTION_KEYWORDS:
                i += 1
                continue
            close = match_forward(toks, i, "(", ")")
            if close >= len(toks):
                break
            body_open = self._find_body_brace(close + 1)
            if body_open is None:
                i = close + 1
                continue
            body_close = match_forward(toks, body_open, "{", "}")
            if is_lambda:
                name, qual = "<lambda>", ()
            else:
                name, qual = self._name_chain(prev)
            funcs.append(Function(name, qual, self.scope_at(prev if not is_lambda else i),
                                  (i, close), (body_open, body_close), toks[i].line))
            i = close + 1
        return funcs

    def _find_body_brace(self, start: int) -> Optional[int]:
        """After a parameter list ')', finds the '{' opening the function body
        (skipping trailing specifiers, trailing return types and ctor-init
        lists). Returns None when the construct is not a definition."""
        toks = self.tokens
        j = start
        while j < len(toks):
            v = toks[j].value
            if v == "{":
                return j
            if v in (";", ",", ")"):  # declaration / call expression
                return None
            if toks[j].kind == "id" and v in self._SPECIFIERS:
                j += 1
                continue
            if v in ("&", "&&", "const", "noexcept"):
                j += 1
                continue
            if v == "noexcept" or v == "throw":
                j += 1
                continue
            if v == "(":  # noexcept(...) / throw()
                j = match_forward(toks, j, "(", ")") + 1
                continue
            if v == "->":  # trailing return type: skip type tokens up to '{'
                j += 1
                depth = 0
                while j < len(toks):
                    w = toks[j].value
                    if w in "(<[":
                        depth += 1
                    elif w in ")>]":
                        depth -= 1
                    elif depth == 0 and w == "{":
                        return j
                    elif depth == 0 and w in (";", ","):
                        return None
                    j += 1
                return None
            if v == ":":  # ctor-init list
                j += 1
                while j < len(toks):
                    w = toks[j].value
                    if w == "(":
                        j = match_forward(toks, j, "(", ")") + 1
                        continue
                    if w == "{":
                        # `member{init}` brace (preceded by an identifier or
                        # '>') vs the body brace (preceded by ')' or '}').
                        if toks[j - 1].kind == "id" or toks[j - 1].value == ">":
                            j = match_forward(toks, j, "{", "}") + 1
                            continue
                        return j
                    if w == ";":
                        return None
                    j += 1
                return None
            return None
        return None

    def _name_chain(self, last: int) -> Tuple[str, Tuple[str, ...]]:
        """Walks `A::B::name` backwards from the token at `last`."""
        toks = self.tokens
        parts = [toks[last].value]
        j = last - 1
        while j > 0 and toks[j].value == "::" and toks[j - 1].kind == "id":
            parts.append(toks[j - 1].value)
            j -= 2
        parts.reverse()
        return parts[-1], tuple(parts[:-1])

    # ---- switches ----

    def _extract_switches(self) -> List[SwitchStmt]:
        out: List[SwitchStmt] = []
        toks = self.tokens
        i = 0
        while i < len(toks):
            if toks[i].kind == "id" and toks[i].value == "switch" and i + 1 < len(toks) \
                    and toks[i + 1].value == "(":
                cond_close = match_forward(toks, i + 1, "(", ")")
                cond = tuple(t.value for t in toks[i + 2 : cond_close])
                body_open = cond_close + 1
                if body_open < len(toks) and toks[body_open].value == "{":
                    body_close = match_forward(toks, body_open, "{", "}")
                    cases, has_default, default_line = self._collect_cases(body_open, body_close)
                    out.append(SwitchStmt(cond, tuple(cases), has_default, toks[i].line,
                                          default_line, (body_open, body_close)))
            i += 1
        return out

    def _collect_cases(self, open_: int, close: int) -> Tuple[List[Tuple[str, ...]], bool, int]:
        toks = self.tokens
        cases: List[Tuple[str, ...]] = []
        has_default = False
        default_line = 0
        j = open_ + 1
        while j < close:
            t = toks[j]
            if t.kind == "id" and t.value == "switch":  # nested switch: skip
                k = j + 1
                if k < close and toks[k].value == "(":
                    k = match_forward(toks, k, "(", ")") + 1
                    if k < close and toks[k].value == "{":
                        j = match_forward(toks, k, "{", "}")
            elif t.kind == "id" and t.value == "case":
                k = j + 1
                label: List[str] = []
                while k < close and toks[k].value != ":":
                    label.append(toks[k].value)
                    k += 1
                    if k < close and toks[k].value == "::":  # scope op inside label
                        label.append("::")
                        k += 1
                cases.append(tuple(label))
                j = k
            elif t.kind == "id" and t.value == "default" and j + 1 < close \
                    and toks[j + 1].value == ":" and toks[j - 1].value != "=":
                has_default = True
                default_line = t.line
            j += 1
        return cases, has_default, default_line

    # ---- loops ----

    def range_fors(self, lo: int, hi: int) -> Iterable[Tuple[int, Tuple[str, ...], Tuple[int, int]]]:
        """Yields (token index, range-expression tokens, body range) for every
        range-for inside [lo, hi)."""
        toks = self.tokens
        j = lo
        while j < hi:
            if toks[j].kind == "id" and toks[j].value == "for" and j + 1 < hi \
                    and toks[j + 1].value == "(":
                close = match_forward(toks, j + 1, "(", ")")
                head = toks[j + 2 : close]
                colon = None
                depth = 0
                for k, t in enumerate(head):
                    if t.value in "({[<":
                        depth += 1
                    elif t.value in ")}]>":
                        depth -= 1
                    elif depth == 0 and t.value == ":":
                        colon = k
                        break
                    elif depth == 0 and t.value == ";":
                        break
                if colon is not None:
                    rng = tuple(t.value for t in head[colon + 1 :])
                    body = self._stmt_body(close + 1)
                    yield j, rng, body
                j = close
            j += 1

    def counted_fors(self, lo: int, hi: int) -> Iterable[Tuple[int, Tuple[str, ...], Tuple[int, int]]]:
        """Yields (token index, head tokens, body range) for classic for loops."""
        toks = self.tokens
        j = lo
        while j < hi:
            if toks[j].kind == "id" and toks[j].value == "for" and j + 1 < hi \
                    and toks[j + 1].value == "(":
                close = match_forward(toks, j + 1, "(", ")")
                head = toks[j + 2 : close]
                if any(t.value == ";" for t in head):
                    yield j, tuple(t.value for t in head), self._stmt_body(close + 1)
                j = close
            j += 1

    def _stmt_body(self, start: int) -> Tuple[int, int]:
        """Token range of the statement starting at `start` (a `{...}` block
        or a single statement up to ';')."""
        toks = self.tokens
        if start < len(toks) and toks[start].value == "{":
            return (start, match_forward(toks, start, "{", "}"))
        depth = 0
        for j in range(start, len(toks)):
            v = toks[j].value
            if v in "({[":
                depth += 1
            elif v in ")}]":
                depth -= 1
            elif depth == 0 and v == ";":
                return (start, j)
        return (start, len(toks) - 1)

    # ---- declarations ----

    def var_decls(self, type_res: List[str]) -> List[VarDecl]:
        """Finds declarations whose type mentions one of `type_res` (regex,
        matched against the flattened type text before the variable name)."""
        out: List[VarDecl] = []
        res = [re.compile(r) for r in type_res]
        toks = self.tokens
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.kind == "id" and any(r.search(t.value) for r in res):
                # Flatten `type<...>`; the declared name is the next plain id
                # after the (balanced) template arguments and any `*&` noise.
                j = i + 1
                type_parts = [t.value]
                if j < len(toks) and toks[j].value == "<":
                    # Not match_forward: the lexer emits the `>>` closing a
                    # nested template (`vector<pair<A, B>>`) as one token,
                    # which a plain "<"/">" balance never closes — it would
                    # run to end-of-file and silently drop every later
                    # declaration in the file.
                    depth = 0
                    close = j
                    while close < len(toks):
                        v = toks[close].value
                        if v == "<":
                            depth += 1
                        elif v == ">":
                            depth -= 1
                        elif v == ">>":
                            depth -= 2
                        if depth <= 0:
                            break
                        close += 1
                    type_parts.extend(tok.value for tok in toks[j : close + 1])
                    j = close + 1
                while j < len(toks) and toks[j].value in ("*", "&", "&&", "const"):
                    type_parts.append(toks[j].value)
                    j += 1
                if j < len(toks) and toks[j].kind == "id" and j + 1 < len(toks) \
                        and toks[j + 1].value in (";", "=", "{", "(", ",", ")"):
                    owner = self.scope_at(i)
                    out.append(VarDecl(toks[j].value, " ".join(type_parts), owner,
                                       self.display, toks[j].line))
                i = j
            i += 1
        return out


# ---- constant folding ----

_INT_RE = re.compile(r"^(0[xX][0-9a-fA-F']+|\d[\d']*)([uUlLzZ]*)$")


def _int_of(tok: str) -> Optional[int]:
    m = _INT_RE.match(tok)
    if not m:
        return None
    return int(m.group(1).replace("'", ""), 0)


def eval_const(expr: Sequence[str], consts: Dict[str, int]) -> Optional[int]:
    """Evaluates an integer constant expression over known constants.

    Supports + - * / % << >> | & ^ ( ) and sizeof-free literals; any
    unresolved identifier makes the result None.
    """
    py: List[str] = []
    for v in expr:
        iv = _int_of(v)
        if iv is not None:
            py.append(str(iv))
        elif v in "+-*%()|&^" or v in ("<<", ">>"):
            py.append("//" if v == "/" else v)
        elif v == "/":
            py.append("//")
        elif v in consts:
            py.append(str(consts[v]))
        elif v == "::" or v in ("usize", "u8", "u16", "u32", "u64", "i64", "std"):
            continue  # qualifier / cast noise: `mp::kWireRecordBytes`
        elif v in ("static_cast", "usize"):
            continue
        else:
            return None
    if not py:
        return None
    try:
        result = eval("".join(py), {"__builtins__": {}}, {})  # noqa: S307 — sanitized
    except Exception:
        return None
    return result if isinstance(result, int) else None


def collect_constants(files: Iterable[SourceFile]) -> Dict[str, int]:
    """Collects `constexpr <type> kName = <expr>;` constants, folding
    forward references in a few passes."""
    decls: List[Tuple[str, List[str]]] = []
    for sf in files:
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind == "id" and t.value == "constexpr":
                j = i + 1
                name = None
                while j < len(toks) and toks[j].value not in ("=", ";", "{", "("):
                    if toks[j].kind == "id":
                        name = toks[j].value
                    j += 1
                if name is None or j >= len(toks) or toks[j].value != "=":
                    continue
                k = j + 1
                expr: List[str] = []
                while k < len(toks) and toks[k].value != ";":
                    expr.append(toks[k].value)
                    k += 1
                decls.append((name, expr))
    consts: Dict[str, int] = {}
    for _ in range(4):
        progressed = False
        for name, expr in decls:
            if name in consts:
                continue
            v = eval_const(expr, consts)
            if v is not None:
                consts[name] = v
                progressed = True
        if not progressed:
            break
    return consts


SOURCE_EXTS = (".hpp", ".cpp", ".cc", ".hh", ".h")


def load_tree(root: str, subdirs: Sequence[str], exclude: Sequence[str] = ()) -> List[SourceFile]:
    """Parses every C++ source under root/<subdir>, skipping excluded path
    fragments (e.g. the self-test corpus)."""
    out: List[SourceFile] = []
    for top in subdirs:
        base = os.path.join(root, top)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if d != "CMakeFiles"]
            rel_dir = os.path.relpath(dirpath, root)
            if any(x in rel_dir.split(os.sep) for x in exclude):
                dirnames[:] = []
                continue
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, fn)
                    with open(full, encoding="utf-8", errors="replace") as fh:
                        text = fh.read()
                    out.append(SourceFile(full, text, os.path.relpath(full, root)))
    return out
