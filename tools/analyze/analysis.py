"""Cross-file analysis model and finding type for amm_analyze.

The model aggregates per-file facts (cpp_model.SourceFile) into the global
registries the checks need: enum definitions, function definitions by name,
folded integer constants, and — when the libclang engine is active —
type-resolved facts that override the token-level approximations.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

import cpp_model
from cpp_model import EnumDef, Function, SourceFile


class Finding(NamedTuple):
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def render_github(self) -> str:
        return (f"::error file={self.path},line={self.line},"
                f"title=amm_analyze({self.rule})::{self.message}")


class ClangSwitch(NamedTuple):
    """A switch over an enum as seen by libclang: exact type resolution."""
    enum_path: Tuple[str, ...]
    handled: Tuple[str, ...]
    has_default: bool
    line: int


class ClangFacts(NamedTuple):
    enums: Tuple[EnumDef, ...]
    switches: Dict[str, Tuple[ClangSwitch, ...]]  # per display path
    unordered_names: Set[str]
    function_typed_names: Set[str]


class AnalysisModel:
    def __init__(self, files: Sequence[SourceFile], clang_facts: Optional[ClangFacts] = None):
        self.files = list(files)
        self.clang = clang_facts
        self.consts = cpp_model.collect_constants(self.files)
        self.enums: Dict[Tuple[str, ...], EnumDef] = {}
        for sf in self.files:
            for e in sf.enums:
                self.enums[e.path] = e
        if clang_facts:
            for e in clang_facts.enums:
                self.enums[e.path] = e
        self.functions: Dict[str, List[Tuple[SourceFile, Function]]] = {}
        for sf in self.files:
            for fn in sf.functions:
                self.functions.setdefault(fn.name, []).append((sf, fn))
        # enumerator name -> enum paths containing it (for membership fallback)
        self.enum_of: Dict[str, Set[Tuple[str, ...]]] = {}
        for path, e in self.enums.items():
            for name in e.enumerators:
                self.enum_of.setdefault(name, set()).add(path)

    # ---- enum resolution ----

    def resolve_enum(self, label: Sequence[str]) -> Optional[EnumDef]:
        """Resolves a case label like mp::WireMessage::Kind::kAppend to its
        enum. Tries suffix matching on the scope path, then unique-membership
        of the enumerator name."""
        parts = [p for p in label if p != "::"]
        # Strip cast noise: `static_cast<u8>(X)` style labels don't occur in
        # case position in this codebase, but integer labels do.
        if not parts or not parts[-1].isidentifier():
            return None
        enumerator = parts[-1]
        scope = tuple(parts[:-1])
        if scope:
            best: Optional[EnumDef] = None
            for path, e in self.enums.items():
                if len(path) >= len(scope) and path[-len(scope):] == scope:
                    if enumerator in e.enumerators:
                        if best is None or len(path) > len(best.path):
                            best = e
            if best:
                return best
        owners = self.enum_of.get(enumerator, set())
        if len(owners) == 1:
            return self.enums[next(iter(owners))]
        return None

    def resolve_switch_enum(self, labels: Sequence[Sequence[str]]) -> Optional[EnumDef]:
        """Resolves the enum a switch dispatches over from ALL its case
        labels jointly: a single enumerator name (e.g. kAppend) can live in
        several enums, but the full label set almost always disambiguates.
        Returns None when no single enum contains every labelled enumerator
        under a compatible scope — such a switch is skipped, never guessed."""
        candidates: Optional[Set[Tuple[str, ...]]] = None
        for label in labels:
            parts = [p for p in label if p != "::"]
            if not parts or not parts[-1].isidentifier() or parts[-1][0].isdigit():
                return None  # numeric / expression label: not an enum switch
            enumerator, scope = parts[-1], tuple(parts[:-1])
            this: Set[Tuple[str, ...]] = set()
            for path, e in self.enums.items():
                if enumerator not in e.enumerators:
                    continue
                if scope and (len(path) < len(scope) or path[-len(scope):] != scope):
                    continue
                this.add(path)
            if not this:
                return None
            candidates = this if candidates is None else candidates & this
            if not candidates:
                return None
        if candidates and len(candidates) == 1:
            return self.enums[next(iter(candidates))]
        return None
