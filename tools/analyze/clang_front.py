"""Optional libclang fact-extraction frontend for amm_analyze.

When `clang.cindex` is importable (python3-clang + a libclang shared
library), this module parses each translation unit with the exact flags
from compile_commands.json and replaces the token-level approximations of
cpp_model with type-resolved facts:

  * enum definitions with fully qualified paths;
  * switch statements with the *resolved* enum type of their condition
    (no label-set heuristics) and the enumerators they handle;
  * declarations whose canonical type involves `std::unordered_*`
    (catches nested cases like vector<unordered_set<T>>) or
    `std::function` (callback invocation sites for lock-blocking).

The byte-accounting and lock-region analyses stay syntactic either way —
only the *facts* they consume get sharper. Machines without libclang
(including this repo's pinned CI gate) run the internal engine; the CI
libclang step is advisory. See docs/ANALYSIS.md §5.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Set, Tuple

from analysis import ClangFacts, ClangSwitch
from cpp_model import SOURCE_EXTS, EnumDef


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401
    except Exception:
        return False
    try:
        clang.cindex.Index.create()
    except Exception:
        return False
    return True


def _compile_args(cc_path: Optional[str]) -> Dict[str, List[str]]:
    """Maps absolute source path -> compiler args from compile_commands.json."""
    args: Dict[str, List[str]] = {}
    if not cc_path or not os.path.exists(cc_path):
        return args
    with open(cc_path, encoding="utf-8") as fh:
        for entry in json.load(fh):
            src = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
            argv = entry.get("arguments")
            if argv is None:
                argv = entry.get("command", "").split()
            # Strip compiler, -c/-o pairs and the input file itself.
            keep: List[str] = []
            skip = True  # first element is the compiler
            it = iter(argv)
            for a in it:
                if skip:
                    skip = False
                    continue
                if a in ("-c", src, entry["file"]):
                    continue
                if a == "-o":
                    next(it, None)
                    continue
                keep.append(a)
            args[src] = keep
    return args


def _qualified_path(cursor) -> Tuple[str, ...]:
    parts: List[str] = []
    c = cursor
    while c is not None and c.kind is not None:
        if c.spelling and c.kind.name in (
                "NAMESPACE", "CLASS_DECL", "STRUCT_DECL", "ENUM_DECL", "CLASS_TEMPLATE"):
            parts.append(c.spelling)
        c = c.semantic_parent
        if c is None or c.kind.name == "TRANSLATION_UNIT":
            break
    parts.reverse()
    return tuple(parts)


def extract(root: str, files, cc_path: Optional[str]) -> Optional[ClangFacts]:
    """Parses every file in `files` (cpp_model.SourceFile list) with libclang;
    returns None when parsing is impossible so the caller falls back."""
    if not available():
        return None
    import clang.cindex as ci

    index = ci.Index.create()
    args_by_src = _compile_args(cc_path)
    default_args = ["-std=c++20", "-x", "c++", f"-I{os.path.join(root, 'src')}"]

    enums: List[EnumDef] = []
    switches: Dict[str, List[ClangSwitch]] = {}
    unordered: Set[str] = set()
    fn_typed: Set[str] = set()

    for sf in files:
        if not sf.path.endswith(SOURCE_EXTS):
            continue
        args = args_by_src.get(os.path.abspath(sf.path), default_args)
        try:
            tu = index.parse(sf.path, args=args)
        except Exception:
            return None  # engine unusable: fall back wholesale, do not mix
        _walk(tu.cursor, sf, root, enums, switches, unordered, fn_typed)

    return ClangFacts(tuple(enums), {k: tuple(v) for k, v in switches.items()},
                      unordered, fn_typed)


def _walk(cursor, sf, root, enums, switches, unordered, fn_typed) -> None:
    for c in cursor.get_children():
        loc = c.location
        in_file = loc.file is not None and os.path.abspath(loc.file.name) == os.path.abspath(sf.path)
        if in_file:
            kind = c.kind.name
            if kind == "ENUM_DECL" and c.is_definition():
                names = tuple(e.spelling for e in c.get_children()
                              if e.kind.name == "ENUM_CONSTANT_DECL")
                if names:
                    enums.append(EnumDef(_qualified_path(c), names, sf.display, loc.line))
            elif kind == "SWITCH_STMT":
                facts = _switch_facts(c)
                if facts is not None:
                    switches.setdefault(sf.display, []).append(
                        ClangSwitch(facts[0], facts[1], facts[2], loc.line))
            elif kind in ("VAR_DECL", "FIELD_DECL", "PARM_DECL"):
                spelling = c.type.get_canonical().spelling
                if "unordered_" in spelling:
                    unordered.add(c.spelling)
                if "std::function<" in spelling:
                    fn_typed.add(c.spelling)
        _walk(c, sf, root, enums, switches, unordered, fn_typed)


def _switch_facts(cursor):
    children = list(cursor.get_children())
    if len(children) < 2:
        return None
    cond, body = children[0], children[-1]
    cond_type = cond.type.get_canonical()
    decl = cond_type.get_declaration()
    if decl is None or decl.kind.name != "ENUM_DECL":
        return None
    enum_path = _qualified_path(decl)
    handled: List[str] = []
    has_default = False

    def visit(c):
        nonlocal has_default
        for ch in c.get_children():
            if ch.kind.name == "SWITCH_STMT":
                continue  # nested switch: its cases are its own
            if ch.kind.name == "CASE_STMT":
                label = next(iter(ch.get_children()), None)
                if label is not None:
                    ref = label.referenced if hasattr(label, "referenced") else None
                    name = ref.spelling if ref is not None else label.spelling
                    if name:
                        handled.append(name)
            elif ch.kind.name == "DEFAULT_STMT":
                has_default = True
            visit(ch)

    visit(body)
    return enum_path, tuple(handled), has_default
