#!/usr/bin/env python3
"""amm_analyze — AST-level protocol-safety analyzer for this repository.

Six checks, one module each (tools/analyze/checks/), documented rule by
rule in docs/ANALYSIS.md §5:

  codec_bounds  codec-bounds, codec-consistency
  exhaustive    switch-exhaustive, switch-default
  determinism   determinism-taint
  lockorder     lock-cycle, lock-blocking
  loopblock     loop-blocking
  growth        unbounded-growth

Engines: the *internal* engine (a pure-Python C++ tokenizer + structural
extractors, cpp_model.py) always works and is what CI gates on; when
python3-clang + libclang are installed, `--engine libclang` (or `auto`)
swaps in type-resolved facts from the real clang AST (clang_front.py).

Usage:
  amm_analyze.py [--root DIR] [--compile-commands FILE] [--engine auto|internal|libclang]
                 [--checks a,b] [--github] [--cache-dir DIR]
  amm_analyze.py --self-test     # run the seeded-violation corpus
  amm_analyze.py --list-rules

Exit status: 0 clean, 1 findings, 2 usage/corpus error.

Suppression: `// analyze:allow(rule[, rule]): reason` on the finding line
or the line above. The reason is mandatory by convention — reviewers treat
a bare allow as a defect.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from typing import Dict, List, Optional, Set

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import cpp_model  # noqa: E402
from analysis import AnalysisModel, Finding  # noqa: E402
from checks import ALL_RULES, CHECKS  # noqa: E402

ANALYZE_DIRS = ("src", "tools")
EXCLUDE_DIRS = ("selftest",)  # the seeded-violation corpus is not production code
CACHE_VERSION = "1"

# ---- self-test corpus expectations ----
#
# bad_* files must fire exactly the listed rules; clean_* twins must be
# silent. Exact-set matching catches false positives on the bad files too.
SELF_TEST_EXPECT: Dict[str, Set[str]] = {
    "bad_codec_bounds.cpp": {"codec-bounds"},
    "clean_codec_bounds.cpp": set(),
    "bad_codec_pair.cpp": {"codec-consistency"},
    "clean_codec_pair.cpp": set(),
    "bad_codec_kinds.cpp": {"codec-consistency", "codec-bounds"},
    "clean_codec_kinds.cpp": set(),
    "bad_codec_frame.cpp": {"codec-bounds"},
    "clean_codec_frame.cpp": set(),
    "bad_switch.cpp": {"switch-exhaustive", "switch-default"},
    "clean_switch.cpp": set(),
    "bad_taint.cpp": {"determinism-taint"},
    "clean_taint.cpp": set(),
    "bad_lock.cpp": {"lock-cycle", "lock-blocking"},
    "clean_lock.cpp": set(),
    "bad_loop.cpp": {"loop-blocking"},
    "clean_loop.cpp": set(),
    "bad_growth.cpp": {"unbounded-growth"},
    "clean_growth.cpp": set(),
}


def run_checks(model: AnalysisModel, only: Optional[Set[str]]) -> List[Finding]:
    findings: List[Finding] = []
    for mod in CHECKS:
        if only is not None and mod.NAME not in only:
            continue
        findings.extend(mod.run(model))
    return sorted(set(findings), key=lambda f: (f.path, f.line, f.rule, f.message))


def build_model(files, engine: str, root: str, cc_path: Optional[str]):
    """Returns (model, engine_used)."""
    facts = None
    used = "internal"
    if engine in ("auto", "libclang"):
        import clang_front
        if clang_front.available():
            facts = clang_front.extract(root, files, cc_path)
            if facts is not None:
                used = "libclang"
        elif engine == "libclang":
            raise SystemExit("amm_analyze: --engine libclang requested but clang.cindex "
                             "is unavailable (install python3-clang + libclang)")
    return AnalysisModel(files, facts), used


def self_test(engine: str) -> int:
    corpus = os.path.join(HERE, "selftest")
    failures: List[str] = []
    for name in sorted(SELF_TEST_EXPECT):
        path = os.path.join(corpus, name)
        if not os.path.exists(path):
            failures.append(f"{name}: corpus file missing")
            continue
        with open(path, encoding="utf-8") as fh:
            sf = cpp_model.SourceFile(path, fh.read(), display=name)
        # Each corpus file is a self-contained model: the internal engine is
        # the one under test (libclang facts would not change pass/fail).
        model, _ = build_model([sf], engine if engine == "libclang" else "internal",
                               corpus, None)
        fired = {f.rule for f in run_checks(model, None)}
        expected = SELF_TEST_EXPECT[name]
        if fired != expected:
            for f in run_checks(model, None):
                print(f"    {f.render()}")
            failures.append(f"{name}: expected rules {sorted(expected) or '{}'}, "
                            f"got {sorted(fired) or '{}'}")
    unknown = {r for rules in SELF_TEST_EXPECT.values() for r in rules} - set(ALL_RULES)
    if unknown:
        failures.append(f"corpus expects unknown rules: {sorted(unknown)}")
    if failures:
        print("amm_analyze self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 2
    print(f"amm_analyze self-test OK ({len(SELF_TEST_EXPECT)} corpus files, "
          f"{len(ALL_RULES)} rules)")
    return 0


def _cache_key(files, engine: str) -> str:
    h = hashlib.sha256()
    h.update(CACHE_VERSION.encode())
    h.update(engine.encode())
    for mod_dir in (HERE, os.path.join(HERE, "checks")):
        for fn in sorted(os.listdir(mod_dir)):
            if fn.endswith(".py"):
                with open(os.path.join(mod_dir, fn), "rb") as fh:
                    h.update(fh.read())
    for sf in files:
        h.update(sf.display.encode())
        h.update(hashlib.sha256(sf.text.encode()).digest())
    return h.hexdigest()


def analyze(root: str, engine: str, cc_path: Optional[str], only: Optional[Set[str]],
            cache_dir: Optional[str]) -> List[Finding]:
    files = cpp_model.load_tree(root, ANALYZE_DIRS, exclude=EXCLUDE_DIRS)
    if not files:
        raise SystemExit(f"amm_analyze: no sources under {root}/{{{','.join(ANALYZE_DIRS)}}}")
    cache_path = None
    if cache_dir:
        key = _cache_key(files, engine)
        if only:
            key = hashlib.sha256((key + ",".join(sorted(only))).encode()).hexdigest()
        os.makedirs(cache_dir, exist_ok=True)
        cache_path = os.path.join(cache_dir, f"findings-{key}.json")
        if os.path.exists(cache_path):
            with open(cache_path, encoding="utf-8") as fh:
                return [Finding(**f) for f in json.load(fh)]
    model, used = build_model(files, engine, root, cc_path)
    findings = run_checks(model, only)
    if used != engine and engine == "auto":
        pass  # informational only; the engine used is deterministic per machine
    if cache_path:
        with open(cache_path, "w", encoding="utf-8") as fh:
            json.dump([f._asdict() for f in findings], fh)
    return findings


def main() -> int:
    ap = argparse.ArgumentParser(prog="amm_analyze", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=os.path.normpath(os.path.join(HERE, "..", "..")),
                    help="repository root (default: two levels above this script)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the libclang engine "
                         "(default: <root>/build/compile_commands.json if present)")
    ap.add_argument("--engine", choices=("auto", "internal", "libclang"), default="auto",
                    help="fact-extraction engine (default auto: libclang when importable)")
    ap.add_argument("--checks", default=None,
                    help="comma-separated module subset (codec_bounds,exhaustive,"
                         "determinism,lockorder)")
    ap.add_argument("--github", action="store_true",
                    help="also emit ::error GitHub annotations")
    ap.add_argument("--cache-dir", default=None,
                    help="directory for the findings cache (keyed by content+engine)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the seeded-violation corpus and exit")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for mod in CHECKS:
            for rule, desc in mod.RULES.items():
                print(f"{rule:20s} [{mod.NAME}] {desc}")
        return 0
    if args.self_test:
        return self_test(args.engine)

    known = {mod.NAME for mod in CHECKS}
    only: Optional[Set[str]] = None
    if args.checks:
        only = {c.strip() for c in args.checks.split(",") if c.strip()}
        bad = only - known
        if bad:
            print(f"amm_analyze: unknown checks {sorted(bad)}; known: {sorted(known)}",
                  file=sys.stderr)
            return 2

    cc = args.compile_commands
    if cc is None:
        candidate = os.path.join(args.root, "build", "compile_commands.json")
        cc = candidate if os.path.exists(candidate) else None

    findings = analyze(args.root, args.engine, cc, only, args.cache_dir)
    for f in findings:
        print(f.render())
        if args.github:
            print(f.render_github())
    if findings:
        print(f"amm_analyze: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
