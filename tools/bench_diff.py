#!/usr/bin/env python3
"""Compare a bench run against a pinned BENCH_*.json baseline.

Extracts every time- or byte-like metric from two collect_bench.py
documents and reports per-metric ratios. A metric is:

  * a cell in a harness table whose column header carries a unit marker
    ("[ms]", "[s]", "[us]", "[B]" for wire bytes, "[KB]"/"[records]" for
    resident memory — all lower-is-better), keyed by (binary, table
    caption, row label, column) — row label = the leading non-metric cells
    (n, history, ...);
  * a cell in a rate column (header contains "/sec", e.g. amm_swarm's
    appends/sec) — higher is better, so the regression test inverts;
  * a google-benchmark entry's real_time, keyed by (binary, benchmark name).

Byte columns make wire-volume regressions (a delta read quietly shipping
the full view again) fail the diff exactly like a time regression would.

Exit status is nonzero iff any metric regressed by more than --threshold
(default 1.5x) — unless --report-only, which always exits 0 (the CI
perf-smoke job is informational; shared runners are too noisy to block on).

Usage:
  tools/bench_diff.py --baseline BENCH_sim.json --current run.json [--threshold 1.5]
  tools/bench_diff.py --baseline BENCH_sim.json --current run.json --report-only
  tools/bench_diff.py --self-test
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

METRIC_UNIT = re.compile(r"\[(ms|us|s|B|KB|records)\]")
# Throughput columns: metrics where HIGHER is better (ratio test inverts).
RATE_UNIT = re.compile(r"/sec\b")
# Derived ratio columns are neither labels nor metrics.
DERIVED_COLS = ("speedup", "growth", "reduction")

Metrics = dict[str, float]


def parse_number(cell: str) -> float | None:
    try:
        return float(cell)
    except ValueError:
        return None


def extract_metrics(doc: dict) -> tuple[Metrics, set[str]]:
    """Flattens a collect_bench.py document into {metric key: value}.

    Returns (metrics, rate_keys): keys in rate_keys are throughput
    metrics where a *drop* is the regression."""
    metrics: Metrics = {}
    rate_keys: set[str] = set()
    for name, sub in sorted(doc.get("experiments", {}).items()):
        # google-benchmark micro document.
        for bench in sub.get("benchmarks", []):
            t = bench.get("real_time")
            if isinstance(t, (int, float)) and bench.get("run_type", "iteration") == "iteration":
                metrics[f"{name} :: {bench['name']}"] = float(t)
        # Harness document: tables with string cells.
        for table in sub.get("tables", []):
            caption = table.get("caption", "")
            inner = table.get("table", {})
            headers = inner.get("headers", [])
            metric_cols = [i for i, hdr in enumerate(headers) if METRIC_UNIT.search(hdr)]
            rate_cols = [i for i, hdr in enumerate(headers)
                         if i not in metric_cols and RATE_UNIT.search(hdr)]
            if not metric_cols and not rate_cols:
                continue
            value_cols = metric_cols + rate_cols
            label_cols = [i for i in range(len(headers)) if i not in value_cols]
            for row in inner.get("rows", []):
                label = ",".join(f"{headers[i]}={row[i]}" for i in label_cols
                                 if i < len(row) and headers[i] not in DERIVED_COLS)
                for i in value_cols:
                    if i >= len(row):
                        continue
                    value = parse_number(row[i])
                    if value is None or value <= 0.0:
                        continue
                    key = f"{name} :: {caption} :: {label} :: {headers[i]}"
                    metrics[key] = value
                    if i in rate_cols:
                        rate_keys.add(key)
    return metrics, rate_keys


def compare(baseline: Metrics, current: Metrics, threshold: float,
            rate_keys: set[str] | None = None) -> tuple[list[str], int]:
    """Returns (report lines, regression count)."""
    rate_keys = rate_keys or set()
    lines = []
    lines.append(f"| metric | baseline | current | ratio | status |")
    lines.append(f"|---|---|---|---|---|")
    regressions = 0
    for key in sorted(set(baseline) & set(current)):
        base, cur = baseline[key], current[key]
        ratio = cur / base
        # Rate metrics (appends/sec): a drop is the regression.
        worse = ratio < 1.0 / threshold if key in rate_keys else ratio > threshold
        better = ratio > threshold if key in rate_keys else ratio < 1.0 / threshold
        if worse:
            status = "REGRESSION"
            regressions += 1
        elif better:
            status = "improved"
        else:
            status = "ok"
        lines.append(f"| {key} | {base:.4g} | {cur:.4g} | {ratio:.2f}x | {status} |")
    only_base = sorted(set(baseline) - set(current))
    only_cur = sorted(set(current) - set(baseline))
    for key in only_base:
        lines.append(f"| {key} | {baseline[key]:.4g} | — | — | missing in current |")
    for key in only_cur:
        lines.append(f"| {key} | — | {current[key]:.4g} | — | new |")
    return lines, regressions


def self_test() -> None:
    """The regression detector must fire on an injected synthetic slowdown
    and stay quiet on identical runs (unit-tested via ctest)."""
    def doc(ms: float) -> dict:
        return {
            "experiments": {
                "bench_hotpath": {
                    "tables": [{
                        "caption": "growth",
                        "table": {
                            "headers": ["n", "history", "extend [ms]", "speedup"],
                            "rows": [["8", "1000", f"{ms}", "10.0"]],
                        },
                    }],
                },
                "bench_chain": {
                    "benchmarks": [
                        {"name": "BM_Build/1000", "real_time": 5.0 * ms,
                         "run_type": "iteration"},
                    ],
                },
                # A wire-volume table: the bytes column is a metric, the
                # derived reduction column is neither label nor metric.
                "exp_e10_abd": {
                    "tables": [{
                        "caption": "steady state",
                        "table": {
                            "headers": ["n", "history", "delta read [B]", "reduction"],
                            "rows": [["4", "10000", f"{100.0 * ms}", "800.0"]],
                        },
                    }],
                },
                # A memory table: [KB]/[records] columns are metrics where
                # growth (an unbounded container, a lost compaction) is the
                # regression — lower is better, like time and bytes.
                "cluster_mem_soak": {
                    "tables": [{
                        "caption": "resident memory vs history",
                        "table": {
                            "headers": ["mode", "history", "live [records]", "rss [KB]"],
                            "rows": [["summary", "1000", f"{40.0 * ms}", f"{2000.0 * ms}"]],
                        },
                    }],
                },
                # A throughput table: /sec is a higher-is-better metric,
                # not part of the row label.
                "amm_swarm": {
                    "tables": [{
                        "caption": "ladder",
                        "table": {
                            "headers": ["writers", "appends/sec", "label"],
                            "rows": [["8", f"{1000.0 / ms}", "epoll"]],
                        },
                    }],
                },
            },
        }

    base, base_rates = extract_metrics(doc(1.0))
    assert len(base) == 6, f"expected 6 metrics, got {base}"
    assert "bench_hotpath :: growth :: n=8,history=1000 :: extend [ms]" in base, base
    assert "exp_e10_abd :: steady state :: n=4,history=10000 :: delta read [B]" in base, base
    assert ("cluster_mem_soak :: resident memory vs history :: "
            "mode=summary,history=1000 :: rss [KB]") in base, base
    assert ("cluster_mem_soak :: resident memory vs history :: "
            "mode=summary,history=1000 :: live [records]") in base, base
    rate_key = "amm_swarm :: ladder :: writers=8,label=epoll :: appends/sec"
    assert base_rates == {rate_key}, base_rates

    _, same = compare(base, extract_metrics(doc(1.0))[0], threshold=1.5, rate_keys=base_rates)
    assert same == 0, "identical runs must not report regressions"

    # ms-metrics (and memory) 10x worse AND the rate 10x lower: all must fire.
    _, slower = compare(base, extract_metrics(doc(10.0))[0], threshold=1.5,
                        rate_keys=base_rates)
    assert slower == 6, f"injected 10x slowdown must regress all 6 metrics, got {slower}"

    # 10x faster everywhere: the rate *rises* 10x — still zero regressions.
    _, faster = compare(base, extract_metrics(doc(0.1))[0], threshold=1.5,
                        rate_keys=base_rates)
    assert faster == 0, "a speedup is not a regression"

    # End-to-end: the CLI contract is "nonzero exit on regression".
    import subprocess
    import tempfile
    with tempfile.TemporaryDirectory(prefix="amm_bench_diff_") as tmp:
        base_p = Path(tmp) / "base.json"
        slow_p = Path(tmp) / "slow.json"
        base_p.write_text(json.dumps(doc(1.0)))
        slow_p.write_text(json.dumps(doc(10.0)))
        argv = [sys.executable, __file__, "--baseline", str(base_p), "--current", str(slow_p)]
        rc = subprocess.run(argv, stdout=subprocess.DEVNULL).returncode
        assert rc != 0, "regression must exit nonzero"
        rc = subprocess.run([*argv, "--report-only"], stdout=subprocess.DEVNULL).returncode
        assert rc == 0, "--report-only must always exit 0"
        rc = subprocess.run(
            [sys.executable, __file__, "--baseline", str(base_p), "--current", str(base_p)],
            stdout=subprocess.DEVNULL).returncode
        assert rc == 0, "identical runs must exit 0"
    print("bench_diff self-test: OK")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", type=Path, help="pinned baseline (BENCH_sim.json)")
    ap.add_argument("--current", type=Path, help="fresh collect_bench.py output")
    ap.add_argument("--threshold", type=float, default=1.5,
                    help="regression ratio; current > threshold*baseline fails (default 1.5)")
    ap.add_argument("--report-only", action="store_true",
                    help="print the delta table but always exit 0 (CI perf-smoke)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the detector fires on an injected regression")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required (or use --self-test)")

    base_doc = json.loads(args.baseline.read_text())
    cur_doc = json.loads(args.current.read_text())
    for doc, path in ((base_doc, args.baseline), (cur_doc, args.current)):
        sha = doc.get("git_sha", "unknown")[:12]
        bt = doc.get("build_type", "unknown")
        print(f"[bench_diff] {path}: sha={sha} build={bt}")

    base_metrics, base_rates = extract_metrics(base_doc)
    cur_metrics, cur_rates = extract_metrics(cur_doc)
    lines, regressions = compare(base_metrics, cur_metrics, args.threshold,
                                 rate_keys=base_rates | cur_rates)
    print("\n".join(lines))
    if regressions:
        print(f"[bench_diff] {regressions} metric(s) regressed beyond "
              f"{args.threshold:.2f}x", file=sys.stderr)
        if not args.report_only:
            sys.exit(1)
    else:
        print("[bench_diff] no regressions")


if __name__ == "__main__":
    main()
