// amm_swarm — high-fanout client swarm for a running amm_node cluster.
//
//   amm_swarm --n N [--host 127.0.0.1] [--base-port 9500 | --ports "p0,p1,.."]
//             [--scale "8,32,128,512"] [--appends 50] [--window 4]
//             [--idle 0] [--label epoll] [--client-loop auto|poll|epoll]
//             [--csv] [--json FILE]
//
// Each rung of --scale opens that many concurrent control-plane
// connections (spread round-robin across the cluster's nodes) and drives
// --appends appends per connection with --window outstanding per
// connection. Every append is a full ABD quorum operation on the server
// side, so the reported rate is end-to-end: swarm socket -> reactor ->
// broadcast -> majority ack -> ctl reply. Reported per rung: wall time,
// appends/sec, and p50/p99 append latency (send to matching reply; ctl
// replies on a session are FIFO, so matching is positional).
//
// --idle N additionally opens N connections (round-robin across nodes)
// that are held for the whole run but never written to. The server accepts
// them and must keep watching their fds while only the writers ever
// become ready — the high-fanout regime of the paper, where a node
// serves a large, mostly quiescent peer population. This is where
// O(ready) readiness (epoll) and O(watched) scanning (poll) diverge;
// with --idle 0 every watched fd is hot and the backends tie.
//
// The swarm itself runs on a net::EventLoop (the same seam the server
// reactor uses) so the *client* never becomes the O(n) bottleneck the
// benchmark exists to measure; --label is echoed into the result table so
// a harness driving the same swarm against servers with different
// backends (tools/swarm_smoke.py) produces distinguishable rows.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exp/harness.hpp"
#include "net/codec.hpp"
#include "net/event_loop.hpp"
#include "support/table.hpp"
#include "tools/cli.hpp"

namespace {

using namespace amm;
using Clock = std::chrono::steady_clock;

struct Conn {
  int fd = -1;
  bool connecting = true;
  bool failed = false;
  u32 sent = 0;
  u32 done = 0;
  u32 interest = 0;
  std::vector<u8> rx;
  std::vector<u8> tx;
  usize tx_off = 0;
  std::deque<Clock::time_point> inflight;  ///< send times, FIFO per session
};

/// Held-open, never-written connections; closed when the run ends.
struct IdleSet {
  std::vector<int> fds;
  ~IdleSet() {
    for (const int fd : fds) ::close(fd);
  }
};

struct RungResult {
  usize writers = 0;
  usize idle = 0;
  u64 appends = 0;
  double wall_ms = 0;
  double rate = 0;
  double p50_us = 0;
  double p99_us = 0;
  bool ok = false;
};

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Abortive close: the swarm opens tens of thousands of short-lived
/// connections per run; a graceful FIN would strand every one of them in
/// client-side TIME_WAIT for 60s and exhaust the ephemeral port range
/// after a few rungs. RST-on-close is safe here — a connection is only
/// closed once every reply it is owed has been received.
void set_linger_reset(int fd) {
  const linger lin{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
}

std::vector<u16> parse_ports(const std::string& list, u16 base_port, u32 n) {
  std::vector<u16> ports;
  if (!list.empty()) {
    usize pos = 0;
    while (pos < list.size()) {
      const usize comma = list.find(',', pos);
      const std::string tok = list.substr(pos, comma == std::string::npos ? comma : comma - pos);
      if (!tok.empty()) ports.push_back(static_cast<u16>(std::stoul(tok)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  } else {
    for (u32 i = 0; i < n; ++i) ports.push_back(static_cast<u16>(base_port + i));
  }
  return ports;
}

std::vector<usize> parse_scale(const std::string& list) {
  std::vector<usize> scale;
  usize pos = 0;
  while (pos < list.size()) {
    const usize comma = list.find(',', pos);
    const std::string tok = list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) scale.push_back(static_cast<usize>(std::stoul(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return scale;
}

/// Queues the next window of append requests on `conn`.
void pump_appends(Conn& conn, u32 appends, u32 window) {
  while (conn.sent < appends && conn.inflight.size() < window) {
    net::CtlRequest req;
    req.op = net::CtlOp::kAppend;
    req.value = static_cast<i64>(conn.sent);
    net::append_frame(conn.tx, net::FrameKind::kCtlReq, net::encode_ctl_request(req));
    conn.inflight.push_back(Clock::now());
    ++conn.sent;
  }
}

/// Nonblocking drain of conn.tx. Returns false on a fatal socket error.
bool flush_conn(Conn& conn) {
  while (conn.tx_off < conn.tx.size()) {
    const ssize_t n = ::send(conn.fd, conn.tx.data() + conn.tx_off,
                             conn.tx.size() - conn.tx_off, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    conn.tx_off += static_cast<usize>(n);
  }
  conn.tx.clear();
  conn.tx_off = 0;
  return true;
}

void sync_interest(net::EventLoop& loop, Conn& conn, u64 token) {
  const u32 desired =
      net::EventLoop::kRead | (conn.tx_off < conn.tx.size() ? net::EventLoop::kWrite : 0);
  if (desired != conn.interest) {
    loop.modify(conn.fd, token, desired);
    conn.interest = desired;
  }
}

/// Opens the standing idle population: connections that are held for the
/// whole run but never written to. The connect burst is paced — the
/// listener's backlog is finite and the server accepts from the same loop
/// it serves writers on.
IdleSet open_idle(const std::string& host, const std::vector<u16>& ports, usize idle) {
  IdleSet idle_conns;
  idle_conns.fds.reserve(idle);
  const char* resolved_host = host == "localhost" ? "127.0.0.1" : host.c_str();
  for (usize i = 0; i < idle; ++i) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ports[i % ports.size()]);
    if (::inet_pton(AF_INET, resolved_host, &addr.sin_addr) != 1) break;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0 || !set_nonblocking(fd)) {
      if (fd >= 0) ::close(fd);
      break;
    }
    set_linger_reset(fd);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 &&
        errno != EINPROGRESS) {
      ::close(fd);
      break;
    }
    idle_conns.fds.push_back(fd);
    if ((i + 1) % 256 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));  // lint:allow(banned-sleep)
  }
  if (idle_conns.fds.size() < idle) {
    std::fprintf(stderr, "amm_swarm: only %zu/%zu idle connections opened\n",
                 idle_conns.fds.size(), idle);
  }
  // Let the servers drain their accept queues before any rung's clock starts.
  // Wall-clock is fine here: this is a benchmark client pacing a real kernel,
  // not protocol code under simulated time.
  if (!idle_conns.fds.empty())
    std::this_thread::sleep_for(std::chrono::milliseconds(300));  // lint:allow(banned-sleep)
  return idle_conns;
}

/// Blocking one-shot ctl stats probe. Post-run reporting only — the rung
/// clock has long stopped, so a plain blocking socket (with a receive
/// timeout as the only failure bound) is the simplest correct tool.
std::optional<mp::NodeStats> fetch_stats(const std::string& host, u16 port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* resolved_host = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, resolved_host, &addr.sin_addr) != 1) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  const timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  set_linger_reset(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  net::CtlRequest req;
  req.op = net::CtlOp::kStats;
  std::vector<u8> tx;
  net::append_frame(tx, net::FrameKind::kCtlReq, net::encode_ctl_request(req));
  usize off = 0;
  while (off < tx.size()) {
    const ssize_t n = ::send(fd, tx.data() + off, tx.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    off += static_cast<usize>(n);
  }
  std::vector<u8> rx;
  u8 chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    rx.insert(rx.end(), chunk, chunk + n);
    net::Frame frame;
    const auto status = net::extract_frame(rx, &frame);
    if (status == net::FrameStatus::kNeedMore) continue;
    ::close(fd);
    if (status == net::FrameStatus::kCorrupt || frame.kind != net::FrameKind::kCtlRep) {
      return std::nullopt;
    }
    const auto reply = net::decode_ctl_reply(frame.payload);
    if (!reply || reply->op != net::CtlOp::kStats || !reply->ok) return std::nullopt;
    return reply->stats;
  }
}

RungResult run_rung(net::LoopBackend client_backend, const std::string& host,
                    const std::vector<u16>& ports, usize writers, u32 appends, u32 window,
                    usize idle) {
  RungResult result;
  result.writers = writers;
  result.idle = idle;
  const auto loop = net::EventLoop::make(client_backend);
  if (!loop) {
    std::fprintf(stderr, "amm_swarm: requested client loop backend unavailable\n");
    return result;
  }

  const char* resolved_host = host == "localhost" ? "127.0.0.1" : host.c_str();

  std::vector<Conn> conns(writers);
  std::vector<Clock::time_point> latencies_start;  // reused below
  std::vector<double> latencies_us;
  latencies_us.reserve(writers * appends);

  const auto t0 = Clock::now();
  for (usize i = 0; i < writers; ++i) {
    Conn& conn = conns[i];
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ports[i % ports.size()]);
    if (::inet_pton(AF_INET, resolved_host, &addr.sin_addr) != 1) return result;
    conn.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (conn.fd < 0 || !set_nonblocking(conn.fd)) return result;
    const int one = 1;
    ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    set_linger_reset(conn.fd);
    const int rc = ::connect(conn.fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc == 0) {
      conn.connecting = false;
      pump_appends(conn, appends, window);
      if (!flush_conn(conn)) return result;
      conn.interest =
          net::EventLoop::kRead | (conn.tx_off < conn.tx.size() ? net::EventLoop::kWrite : 0);
      loop->add(conn.fd, i, conn.interest);
    } else if (errno == EINPROGRESS) {
      conn.interest = net::EventLoop::kWrite;
      loop->add(conn.fd, i, conn.interest);
    } else {
      return result;
    }
  }

  usize completed = 0;
  auto last_progress = Clock::now();
  std::vector<net::ReadyEvent> events;
  u8 chunk[65536];
  while (completed < writers) {
    // A stalled cluster (or a dropped conn) must fail the rung, not hang it.
    if (Clock::now() - last_progress > std::chrono::seconds(15)) {
      std::fprintf(stderr, "amm_swarm: no progress for 15s at %zu/%zu writers done\n",
                   completed, writers);
      break;
    }
    loop->wait(std::chrono::milliseconds(100), &events);
    for (const net::ReadyEvent& event : events) {
      Conn& conn = conns[event.token];
      if (conn.fd < 0 || conn.failed) continue;
      if (conn.connecting) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (event.error || err != 0) {
          conn.failed = true;
          continue;
        }
        if (!event.writable) continue;
        conn.connecting = false;
        pump_appends(conn, appends, window);
        if (!flush_conn(conn)) {
          conn.failed = true;
          continue;
        }
        sync_interest(*loop, conn, event.token);
        continue;
      }
      if (event.error && !event.readable) {
        conn.failed = true;
        continue;
      }
      if (event.readable) {
        bool dead = false;
        for (;;) {
          const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
          if (n > 0) {
            conn.rx.insert(conn.rx.end(), chunk, chunk + n);
            if (static_cast<usize>(n) < sizeof(chunk)) break;
          } else if (n == 0) {
            dead = true;
            break;
          } else {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            dead = true;
            break;
          }
        }
        const auto now = Clock::now();
        for (;;) {
          net::Frame frame;
          const auto status = net::extract_frame(conn.rx, &frame);
          if (status == net::FrameStatus::kNeedMore) break;
          if (status == net::FrameStatus::kCorrupt) {
            dead = true;
            break;
          }
          if (frame.kind != net::FrameKind::kCtlRep) continue;
          const auto reply = net::decode_ctl_reply(frame.payload);
          if (!reply || reply->op != net::CtlOp::kAppend || conn.inflight.empty()) continue;
          const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
              now - conn.inflight.front());
          conn.inflight.pop_front();
          latencies_us.push_back(static_cast<double>(us.count()));
          ++conn.done;
          last_progress = now;
        }
        if (dead && conn.done < appends) {
          conn.failed = true;
          continue;
        }
        pump_appends(conn, appends, window);
        if (!flush_conn(conn)) {
          conn.failed = true;
          continue;
        }
        if (conn.done >= appends) {
          loop->remove(conn.fd);
          ::close(conn.fd);
          conn.fd = -1;
          ++completed;
          continue;
        }
      }
      if (event.writable && !flush_conn(conn)) {
        conn.failed = true;
        continue;
      }
      if (conn.fd >= 0) sync_interest(*loop, conn, event.token);
    }
    for (Conn& conn : conns) {
      if (conn.failed && conn.fd >= 0) {
        std::fprintf(stderr, "amm_swarm: connection failed mid-rung\n");
        loop->remove(conn.fd);
        ::close(conn.fd);
        conn.fd = -1;
      }
    }
    if (std::any_of(conns.begin(), conns.end(), [](const Conn& c) { return c.failed; })) break;
  }
  const auto t1 = Clock::now();

  for (Conn& conn : conns) {
    if (conn.fd >= 0) {
      loop->remove(conn.fd);
      ::close(conn.fd);
      conn.fd = -1;
    }
  }

  result.appends = latencies_us.size();
  result.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0).count();
  result.rate = result.wall_ms > 0 ? 1000.0 * static_cast<double>(result.appends) / result.wall_ms
                                   : 0.0;
  if (!latencies_us.empty()) {
    const usize i50 = latencies_us.size() / 2;
    const usize i99 = std::min(latencies_us.size() - 1, latencies_us.size() * 99 / 100);
    std::nth_element(latencies_us.begin(), latencies_us.begin() + static_cast<std::ptrdiff_t>(i50),
                     latencies_us.end());
    result.p50_us = latencies_us[i50];
    std::nth_element(latencies_us.begin(), latencies_us.begin() + static_cast<std::ptrdiff_t>(i99),
                     latencies_us.end());
    result.p99_us = latencies_us[i99];
  }
  result.ok = completed == writers &&
              result.appends == static_cast<u64>(writers) * appends;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);

  // Options are declared (and validated, with --help and unknown-flag
  // rejection) through tools::OptionSet; exp::Harness then re-reads its own
  // common flags (--seed/--trials/--threads/--csv/--json) from the same
  // argv, so both parsers see one consistent vocabulary.
  u32 n = 3;
  std::string host = "127.0.0.1";
  u16 base_port = 9500;
  std::string ports_list;
  std::string scale_list = "8,32,128,512";
  u32 appends = 50;
  u32 window = 4;
  u64 idle_count = 0;
  std::string label = "default";
  std::string client_loop = "auto";
  u64 trials = 1;
  u64 seed = 20200715;
  u32 threads = 0;
  bool csv = false;
  std::string json_path;
  tools::OptionSet opts("amm_swarm", "client-swarm append throughput against amm_node");
  opts.add_u32("n", &n, "number of cluster nodes to spread connections over");
  opts.add_string("host", &host, "cluster host");
  opts.add_u16("base-port", &base_port, "node i listens on base-port+i");
  opts.add_string("ports", &ports_list, "explicit comma-separated node ports (overrides base-port)");
  opts.add_string("scale", &scale_list, "comma-separated rungs of concurrent writers");
  opts.add_u32("appends", &appends, "appends per connection");
  opts.add_u32("window", &window, "appends in flight per connection");
  opts.add_u64("idle", &idle_count, "standing never-written connections held for the run");
  opts.add_string("label", &label, "label echoed into result rows");
  opts.add_enum("client-loop", &client_loop, {"auto", "poll", "epoll"}, "swarm-side event loop");
  opts.add_u64("trials", &trials, "accepted for harness compatibility");
  opts.add_u64("seed", &seed, "harness seed echoed into --json output");
  opts.add_u32("threads", &threads, "harness worker threads (0 = hardware)");
  opts.add_flag("csv", &csv, "emit CSV instead of the ASCII table");
  opts.add_string("json", &json_path, "additionally write emitted tables to this JSON file");
  switch (opts.parse(argc, argv)) {
    case tools::ParseStatus::kHelp:
      opts.print_help(stdout);
      return 0;
    case tools::ParseStatus::kError:
      std::fprintf(stderr, "amm_swarm: %s\n", opts.error().c_str());
      return 2;
    case tools::ParseStatus::kOk:
      break;
  }

  exp::Harness harness(argc, argv, "amm_swarm: client-swarm append throughput", 1);
  const std::vector<u16> ports = parse_ports(ports_list, base_port, n);
  const std::vector<usize> scale = parse_scale(scale_list);
  const usize idle = static_cast<usize>(idle_count);
  const net::LoopBackend client_backend = net::parse_loop_backend(client_loop);
  if (ports.empty() || scale.empty() || appends == 0 || window == 0) {
    std::fprintf(stderr, "amm_swarm: need nonempty --ports/--scale and positive --appends/--window\n");
    return 2;
  }

  // The idle population stands for the whole run: every rung then measures
  // a server that is already watching `idle` quiescent sessions, and rungs
  // do not perturb each other with 6000-session teardown storms.
  const IdleSet idle_conns = open_idle(host, ports, idle);

  Table table({"writers", "idle", "appends", "wall [ms]", "appends/sec", "p50 [us]",
               "p99 [us]", "label"});
  bool all_ok = true;
  for (const usize writers : scale) {
    const RungResult r = run_rung(client_backend, host, ports, writers, appends, window, idle);
    all_ok = all_ok && r.ok;
    table.add_row({std::to_string(r.writers), std::to_string(r.idle), std::to_string(r.appends),
                   fmt(r.wall_ms, 1), fmt(r.rate, 0), fmt(r.p50_us, 0), fmt(r.p99_us, 0), label});
    if (!r.ok) {
      std::fprintf(stderr, "amm_swarm: rung writers=%zu incomplete (%llu appends acked)\n",
                   writers, static_cast<unsigned long long>(r.appends));
    }
  }
  harness.emit(table, "append throughput vs concurrent writers");

  // Post-run server memory probe: the §8 story measured end-to-end — how
  // much record state each node resides with after the whole load. With
  // compaction off live == history on every node; in summary mode live is
  // the suffix the checkpoint has not folded. Skipped silently if a node
  // is unreachable (the rung results above already failed in that case).
  Table memory({"node", "live [records]", "folded", "rss [KB]", "label"});
  bool have_stats = !ports.empty();
  for (usize i = 0; i < ports.size() && have_stats; ++i) {
    const std::optional<mp::NodeStats> stats = fetch_stats(host, ports[i]);
    if (!stats) {
      have_stats = false;
      break;
    }
    memory.add_row({std::to_string(i), std::to_string(stats->live_records),
                    std::to_string(stats->records_folded), std::to_string(stats->rss_kb),
                    label});
  }
  if (have_stats) harness.emit(memory, "per-node resident record state after the run");
  return all_ok ? 0 : 1;
}
