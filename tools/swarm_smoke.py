#!/usr/bin/env python3
"""Drive amm_swarm against a real loopback cluster, once per reactor backend.

For each backend in --backends this script boots --n node clusters with
``amm_node --backend <b>``, aims an amm_swarm rung ladder at them, and folds
the swarm's result tables into one harness-style JSON document (the shape
collect_bench.py ingests via --extra amm_swarm=FILE), captioned with the
server backend so bench_diff.py keys epoll and poll rows separately.

Measurement controls (the committed BENCH_net.json baseline uses all three):

  --fresh-cluster-per-rung   boot a new cluster for every rung (and every
      trial) so a rung never inherits the previous rung's record history or
      its idle-population teardown. Append cost creeps up with history
      (growing digest/verify-cache tables), so a shared cluster tilts the
      ladder against its later rungs.
  --total-appends N          per-writer appends = N // writers, so every
      rung performs the same total work and deposits the same history —
      rungs differ only in fanout, the variable under study.
  --trials K                 run each rung K times and keep the best
      appends/sec row (peak sustained throughput; best-of damps loopback
      scheduler noise on small machines).

Exit status is nonzero if any swarm invocation fails (incomplete rung,
unreachable cluster), making this a cheap end-to-end smoke for the whole
high-fanout path: connect burst -> accept -> ctl append -> ABD quorum ->
batched verify -> ctl reply, under both readiness backends.

Usage:
  tools/swarm_smoke.py --bin-dir build/tools [--n 3] [--scale 8,32]
                       [--appends 20 | --total-appends 25600] [--window 4]
                       [--idle 0] [--trials 1] [--fresh-cluster-per-rung]
                       [--backends epoll,poll] [--json swarm.json]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from cluster_test import Cluster, ClusterError, log  # noqa: E402

RATE_COLUMN = "appends/sec"


def run_swarm(bin_dir: Path, cluster: Cluster, scale: str, appends: int,
              window: int, idle: int, label: str) -> dict:
    """Runs one amm_swarm invocation; returns its throughput table."""
    ports = ",".join(str(cluster.port(i)) for i in range(cluster.n))
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_json = Path(tmp.name)
    try:
        cmd = [str(bin_dir / "amm_swarm"), "--ports", ports, "--scale", scale,
               "--appends", str(appends), "--window", str(window),
               "--idle", str(idle), "--label", label, "--json", str(out_json)]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
        sys.stdout.write(proc.stdout)
        if proc.returncode != 0:
            raise ClusterError(
                f"amm_swarm (label={label}) -> exit {proc.returncode}: {proc.stderr.strip()}")
        doc = json.loads(out_json.read_text())
        # amm_swarm emits the throughput ladder plus (when the post-run
        # stats probe succeeds) a per-node resident-memory table; the
        # ladder is the one keyed by the rate column.
        tables = [t for t in doc.get("tables", [])
                  if RATE_COLUMN in t.get("table", {}).get("headers", [])]
        if len(tables) != 1:
            raise ClusterError(
                f"amm_swarm emitted {len(tables)} throughput tables, expected 1")
        return tables[0]
    finally:
        out_json.unlink(missing_ok=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin-dir", type=Path, required=True)
    parser.add_argument("--n", type=int, default=3)
    parser.add_argument("--seed", type=int, default=20200715)
    parser.add_argument("--scale", default="8,32")
    parser.add_argument("--appends", type=int, default=20,
                        help="appends per writer (ignored when --total-appends is set)")
    parser.add_argument("--total-appends", type=int, default=None,
                        help="fix total appends per rung; per-writer = total // writers")
    parser.add_argument("--window", type=int, default=4)
    parser.add_argument("--idle", type=int, default=0,
                        help="held-open quiescent connections per cluster (the "
                             "high-fanout regime where epoll and poll diverge)")
    parser.add_argument("--trials", type=int, default=1,
                        help="runs per rung; the best appends/sec row is kept")
    parser.add_argument("--fresh-cluster-per-rung", action="store_true",
                        help="boot a new cluster per rung+trial (no cross-rung "
                             "history or idle-teardown contamination)")
    parser.add_argument("--backends", default="epoll,poll")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the merged harness document here")
    args = parser.parse_args()

    rungs = [int(s) for s in args.scale.split(",") if s]
    if not rungs or args.trials < 1:
        log("FAILED: need a nonempty --scale and --trials >= 1")
        return 1

    def appends_for(writers: int) -> int:
        if args.total_appends is not None:
            return max(1, args.total_appends // writers)
        return args.appends

    tables: list[dict] = []
    for backend in [b for b in args.backends.split(",") if b]:
        log(f"server backend requested={backend}")
        headers: list[str] | None = None
        rows: list[list[str]] = []

        def one_trial(cluster: Cluster, writers: int) -> list[list[str]]:
            table = run_swarm(args.bin_dir, cluster, str(writers), appends_for(writers),
                              args.window, args.idle, backend)
            nonlocal headers
            if headers is None:
                headers = table["table"]["headers"]
            return table["table"]["rows"]

        if args.fresh_cluster_per_rung:
            # Sweep-major: each trial walks the whole ladder, then best-of
            # is taken per rung across sweeps. Trial-major would let slow
            # ambient drift masquerade as a rung-ordering effect (the last
            # rung always measured on the most-drifted machine).
            candidates: dict[int, list[list[str]]] = {w: [] for w in rungs}
            for _ in range(args.trials):
                for writers in rungs:
                    cluster = Cluster(args.bin_dir, args.n, args.seed,
                                      node_args=("--backend", backend))
                    cluster.start()
                    try:
                        candidates[writers] += one_trial(cluster, writers)
                    finally:
                        cluster.stop_all()
            rate = headers.index(RATE_COLUMN)
            for writers in rungs:
                rows.append(max(candidates[writers], key=lambda r: float(r[rate])))
        else:
            cluster = Cluster(args.bin_dir, args.n, args.seed,
                              node_args=("--backend", backend))
            cluster.start()
            try:
                for writers in rungs:
                    candidates = []
                    for _ in range(args.trials):
                        candidates += one_trial(cluster, writers)
                    rate = headers.index(RATE_COLUMN)
                    rows.append(max(candidates, key=lambda r: float(r[rate])))
            finally:
                cluster.stop_all()

        tables.append({
            "caption": f"append throughput vs concurrent writers (server backend={backend})",
            "table": {"headers": headers, "rows": rows},
        })

    doc = {"title": "amm_swarm client swarm (per server backend)", "tables": tables}
    if args.json:
        args.json.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        log(f"wrote {args.json}")
    log(f"swarm smoke OK across backends: {args.backends}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ClusterError as err:
        log(f"FAILED: {err}")
        sys.exit(1)
