// amm_node — a real append-memory node: one AbdNode (§4, Algorithms 2–3)
// hosted behind the poll-based TCP transport, plus the DAG BA decision
// rule (§5.3, Algorithm 6) served over the control plane.
//
//   amm_node --id I --n N [--seed S] [--host 127.0.0.1] [--base-port 9500]
//            [--backend auto|poll|epoll] [--verify-threads T]
//            [--high-watermark BYTES] [--low-watermark BYTES]
//            [--compact off|retain|summary] [--compact-lag L]
//            [--verify-cache-cap KEYS]
//
// --compact selects the decided-prefix compaction mode (DESIGN.md §8):
// `off` is the unbounded pre-compaction node, `retain` folds the stable
// prefix into a checkpoint but keeps record bodies (cross-checkable, no
// memory win), `summary` also erases folded bodies so resident memory
// tracks the live suffix instead of total history. A summary node opens
// with a checkpoint sync: it adopts the decided prefix its peers agree on
// by quorum, then delta-reads only the live suffix.
//
// Node i listens on base-port+i and dials every other node. All nodes of a
// cluster must share --n and --seed: the KeyRegistry is derived from them,
// which is this runtime's stand-in for a deployed PKI (DESIGN.md §2 — the
// simulated-signature substitution, now enforced on real sockets).
//
// Control plane (see amm_ctl): append / read / decide / stats / kick on
// the same port. Operations run through the full ABD protocol — an append
// completes only after a majority of the cluster acked it, a read merges a
// majority of views — so every number amm_ctl prints is a real quorum
// result, not local state.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <deque>
#include <string>

#include <memory>

#include "mp/abd.hpp"
#include "net/decision.hpp"
#include "net/transport.hpp"
#include "support/cli.hpp"
#include "support/thread_pool.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

/// Resident set size in KiB from /proc/self/statm (second field, pages).
/// Returns 0 where procfs is unavailable — the stat is then absent, not
/// wrong.
amm::u64 resident_kb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long size_pages = 0;
  unsigned long resident_pages = 0;
  const int matched = std::fscanf(f, "%lu %lu", &size_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<amm::u64>(resident_pages) * static_cast<amm::u64>(page) / 1024u;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amm;

  const CliArgs args(argc, argv);
  const u32 n = static_cast<u32>(args.get_int("n", 5));
  const u32 id = static_cast<u32>(args.get_int("id", 0));
  const u64 seed = static_cast<u64>(args.get_int("seed", 20200715));
  const std::string host = args.get_string("host", "127.0.0.1");
  const u16 base_port = static_cast<u16>(args.get_int("base-port", 9500));
  const std::string backend = args.get_string("backend", "auto");
  const u32 verify_threads = static_cast<u32>(args.get_int("verify-threads", 0));
  const std::string compact_mode = args.get_string("compact", "off");
  if (n == 0 || id >= n) {
    std::fprintf(stderr, "amm_node: need 0 <= --id < --n\n");
    return 2;
  }
  if (compact_mode != "off" && compact_mode != "retain" && compact_mode != "summary") {
    std::fprintf(stderr, "amm_node: --compact must be off|retain|summary\n");
    return 2;
  }

  mp::AbdConfig abd_config;
  abd_config.compact.enabled = compact_mode != "off";
  abd_config.compact.retain_records = compact_mode != "summary";
  abd_config.compact.lag =
      static_cast<u32>(args.get_int("compact-lag", static_cast<i64>(abd_config.compact.lag)));
  abd_config.verify_cache_cap = static_cast<usize>(
      args.get_int("verify-cache-cap", static_cast<i64>(abd_config.verify_cache_cap)));

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  crypto::KeyRegistry keys(n, seed);
  net::TransportConfig config;
  config.self = NodeId{id};
  config.backend = net::parse_loop_backend(backend);
  for (u32 i = 0; i < n; ++i) {
    config.peers.push_back(net::Endpoint{host, static_cast<u16>(base_port + i)});
  }
  config.outbound_high_watermark = static_cast<usize>(
      args.get_int("high-watermark", static_cast<i64>(config.outbound_high_watermark)));
  config.outbound_low_watermark = static_cast<usize>(
      args.get_int("low-watermark", static_cast<i64>(config.outbound_low_watermark)));
  config.verify_cache_cap = abd_config.verify_cache_cap;
  net::TcpTransport transport(config, keys, Rng::for_stream(seed, 0x6e6f6465 + id));
  if (!transport.start()) {
    std::fprintf(stderr, "amm_node: cannot listen on %s:%u\n", host.c_str(),
                 static_cast<unsigned>(base_port + id));
    return 2;
  }
  std::unique_ptr<ThreadPool> verify_pool;
  if (verify_threads > 0) {
    verify_pool = std::make_unique<ThreadPool>(verify_threads);
    transport.set_verify_pool(verify_pool.get());
  }

  mp::AbdNode node(NodeId{id}, transport, keys, abd_config);

  // Control-plane ops dispatch immediately: AbdNode pipelines appends
  // internally (bounded by AbdConfig::max_pipeline, excess queues in
  // order) and correlates reads by read id, so concurrent ctl requests
  // keep the wire full instead of serializing on a single in-flight op.
  struct PendingCtl {
    u64 session = 0;
    net::CtlRequest request;
  };
  std::deque<PendingCtl> ctl_queue;

  transport.set_ctl_handler([&ctl_queue](u64 session, const net::CtlRequest& request) {
    ctl_queue.push_back(PendingCtl{session, request});
  });

  const auto fill_stats = [&] {
    net::CtlStats stats;
    stats.messages_sent = transport.messages_sent();
    stats.bytes_sent = transport.bytes_sent();
    stats.view_size = node.local_view().size();
    stats.appends_issued = node.appends_issued();
    stats.reconnects = transport.reconnects();
    stats.auth_rejects = transport.auth_rejects();
    stats.sig_rejects = transport.sig_rejects();
    stats.reads_served_full = node.stats().reads_served_full;
    stats.reads_served_delta = node.stats().reads_served_delta;
    stats.read_records_sent = node.stats().read_records_sent;
    stats.read_fallbacks = node.stats().read_fallbacks;
    stats.verify_cache_hits = node.verify_cache_hits() + transport.verify_cache_hits();
    stats.verify_cache_misses = node.verify_cache_misses() + transport.verify_cache_misses();
    stats.verify_cache_evictions =
        node.verify_cache_evictions() + transport.verify_cache_evictions();
    // The checkpoint's count, not the local fold-activity counter: a
    // restarted node that *adopted* its checkpoint folded nothing locally
    // but still summarizes folded_records records.
    stats.records_folded = node.checkpoint().folded_records;
    stats.live_records = node.live_records();
    stats.parked_rejects = node.stats().parked_rejects;
    stats.rss_kb = resident_kb();
    return stats;
  };

  const auto pump_ops = [&] {
    while (!ctl_queue.empty()) {
      const PendingCtl item = ctl_queue.front();
      ctl_queue.pop_front();
      net::CtlReply reply;
      reply.op = item.request.op;
      switch (item.request.op) {
        case net::CtlOp::kAppend:
          node.begin_append(item.request.value, [&, item] {
            net::CtlReply done;
            done.op = net::CtlOp::kAppend;
            done.ok = true;
            transport.send_ctl_reply(item.session, done);
          });
          break;
        case net::CtlOp::kRead:
          node.begin_read([&, item](const std::vector<mp::SignedAppend>& view) {
            net::CtlReply done;
            done.op = net::CtlOp::kRead;
            done.ok = true;
            done.view = view;
            transport.send_ctl_reply(item.session, done);
          });
          break;
        case net::CtlOp::kDecide:
          node.begin_read([&, item](const std::vector<mp::SignedAppend>& view) {
            // In summary mode the quorum view is the live suffix (no peer
            // ships bodies below the reader's fold), so the folded prefix
            // contributes through the checkpoint's vote_sum. Retain/off
            // views still hold every body — plain decide, or the fold
            // would double-count. k below the fold is undecidable in
            // summary mode: the per-record resolution is gone.
            const mp::Checkpoint& ckpt = node.checkpoint();
            const bool summary = compact_mode == "summary" && ckpt.folded_records > 0;
            net::Decision decision;
            bool resolvable = true;
            if (!summary) {
              decision = net::decide_first_k(view, item.request.k);
            } else if (item.request.k >= ckpt.folded_records) {
              decision = net::decide_first_k_with_checkpoint(ckpt, view, item.request.k);
            } else {
              resolvable = false;
            }
            net::CtlReply done;
            done.op = net::CtlOp::kDecide;
            done.ok = resolvable && decision.decided_over > 0;
            done.decision = decision.sign;
            done.decided_over = decision.decided_over;
            transport.send_ctl_reply(item.session, done);
          });
          break;
        case net::CtlOp::kStats:
          reply.ok = true;
          reply.stats = fill_stats();
          transport.send_ctl_reply(item.session, reply);
          break;
        case net::CtlOp::kKick:
          transport.kick_outbound();
          reply.ok = true;
          transport.send_ctl_reply(item.session, reply);
          break;
      }
    }
  };

  std::printf("amm_node: id=%u n=%u backend=%s listening on %s:%u\n", id, n,
              transport.backend_name(), host.c_str(),
              static_cast<unsigned>(transport.listen_port()));
  std::fflush(stdout);

  transport.connect_peers();
  if (compact_mode == "summary") {
    // A restarting summary node does not replay the folded prefix record by
    // record: it adopts the quorum-agreed checkpoint and delta-reads only
    // the live suffix (DESIGN.md §8). Fire-and-forget: until the sync
    // completes the node simply serves from an older (empty) checkpoint.
    node.begin_checkpoint_sync([id](bool ok) {
      std::printf("amm_node: id=%u checkpoint sync %s\n", id, ok ? "adopted" : "skipped");
      std::fflush(stdout);
    });
  }
  while (g_stop == 0) {
    transport.poll_once(std::chrono::milliseconds(50));
    pump_ops();
  }

  std::printf("amm_node: id=%u shutting down (view=%zu appends=%u)\n", id,
              node.local_view().size(), node.appends_issued());
  transport.stop();
  return 0;
}
