// amm_node — a real append-memory node: one AbdNode (§4, Algorithms 2–3)
// hosted behind the poll-based TCP transport, plus the DAG BA decision
// rule (§5.3, Algorithm 6) served over the control plane.
//
//   amm_node --id I --n N [--seed S] [--host 127.0.0.1] [--base-port 9500]
//            [--backend auto|poll|epoll] [--verify-threads T]
//            [--high-watermark BYTES] [--low-watermark BYTES]
//            [--compact off|retain|summary] [--compact-lag L]
//            [--verify-cache-cap KEYS]
//            [--store-dir D] [--fsync never|interval|always]
//            [--fsync-interval A] [--snapshot-interval A] [--segment-bytes B]
//
// (Full option reference: amm_node --help; tools/cli.hpp declares the
// vocabulary once and generates parsing, validation and help from it.)
//
// --store-dir attaches the durable backend (storage::FileLog, DESIGN.md
// §10): every admitted record is appended to a CRC-framed segment log and
// the node's protocol state is snapshotted periodically. On restart with a
// populated store the node first recovers locally — newest self-signed
// snapshot, then log replay — and only fetches the tail it missed from the
// cluster, via the same delta-read/checkpoint-sync machinery a live node
// uses. Restart wire cost is O(missed records), not O(history).
//
// --compact selects the decided-prefix compaction mode (DESIGN.md §8):
// `off` is the unbounded pre-compaction node, `retain` folds the stable
// prefix into a checkpoint but keeps record bodies (cross-checkable, no
// memory win), `summary` also erases folded bodies so resident memory
// tracks the live suffix instead of total history. A summary node opens
// with a checkpoint sync: it adopts the decided prefix its peers agree on
// by quorum, then delta-reads only the live suffix.
//
// Node i listens on base-port+i and dials every other node. All nodes of a
// cluster must share --n and --seed: the KeyRegistry is derived from them,
// which is this runtime's stand-in for a deployed PKI (DESIGN.md §2 — the
// simulated-signature substitution, now enforced on real sockets).
//
// Control plane (see amm_ctl): append / read / decide / stats / kick on
// the same port. Operations run through the full ABD protocol — an append
// completes only after a majority of the cluster acked it, a read merges a
// majority of views — so every number amm_ctl prints is a real quorum
// result, not local state.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <deque>
#include <string>

#include <memory>

#include "mp/abd.hpp"
#include "net/decision.hpp"
#include "net/transport.hpp"
#include "storage/file_log.hpp"
#include "support/thread_pool.hpp"
#include "tools/cli.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

/// Resident set size in KiB from /proc/self/statm (second field, pages).
/// Returns 0 where procfs is unavailable — the stat is then absent, not
/// wrong.
amm::u64 resident_kb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long size_pages = 0;
  unsigned long resident_pages = 0;
  const int matched = std::fscanf(f, "%lu %lu", &size_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<amm::u64>(resident_pages) * static_cast<amm::u64>(page) / 1024u;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amm;

  tools::NodeConfig cli;
  {
    // Seed the deep-config defaults before add_node_options captures them
    // for --help, so help and behavior cannot drift apart.
    const mp::AbdConfig abd_defaults;
    cli.compact_lag = abd_defaults.compact.lag;
    cli.verify_cache_cap = abd_defaults.verify_cache_cap;
    cli.snapshot_interval = abd_defaults.snapshot_interval;
    const net::TransportConfig transport_defaults;
    cli.high_watermark = transport_defaults.outbound_high_watermark;
    cli.low_watermark = transport_defaults.outbound_low_watermark;
  }
  tools::OptionSet opts("amm_node", "one append-memory node (ABD quorum protocol over TCP)");
  tools::add_node_options(opts, &cli);
  switch (opts.parse(argc, argv)) {
    case tools::ParseStatus::kHelp:
      opts.print_help(stdout);
      return 0;
    case tools::ParseStatus::kError:
      std::fprintf(stderr, "amm_node: %s\n", opts.error().c_str());
      return 2;
    case tools::ParseStatus::kOk:
      break;
  }
  const u32 n = cli.n;
  const u32 id = cli.id;
  const u64 seed = cli.seed;
  const std::string host = cli.host;
  const u16 base_port = cli.base_port;
  const std::string compact_mode = cli.compact;
  if (n == 0 || id >= n) {
    std::fprintf(stderr, "amm_node: need 0 <= --id < --n\n");
    return 2;
  }

  mp::AbdConfig abd_config;
  abd_config.compact.enabled = compact_mode != "off";
  abd_config.compact.retain_records = compact_mode != "summary";
  abd_config.compact.lag = cli.compact_lag;
  abd_config.verify_cache_cap = static_cast<usize>(cli.verify_cache_cap);
  abd_config.snapshot_interval = cli.snapshot_interval;

  std::unique_ptr<storage::FileLog> store;
  if (!cli.store_dir.empty()) {
    storage::FileLogConfig store_config;
    store_config.dir = cli.store_dir;
    store_config.fsync = *mp::parse_fsync_policy(cli.fsync);  // vocabulary enforced by parse()
    store_config.fsync_interval = cli.fsync_interval;
    store_config.segment_bytes = static_cast<usize>(cli.segment_bytes);
    store = std::make_unique<storage::FileLog>(store_config);
    if (!store->ok()) {
      std::fprintf(stderr, "amm_node: cannot open --store-dir %s: %s\n", cli.store_dir.c_str(),
                   store->error().c_str());
      return 2;
    }
    abd_config.storage = store.get();
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  crypto::KeyRegistry keys(n, seed);
  net::TransportConfig config;
  config.self = NodeId{id};
  config.backend = net::parse_loop_backend(cli.backend);
  for (u32 i = 0; i < n; ++i) {
    config.peers.push_back(net::Endpoint{host, static_cast<u16>(base_port + i)});
  }
  config.outbound_high_watermark = static_cast<usize>(cli.high_watermark);
  config.outbound_low_watermark = static_cast<usize>(cli.low_watermark);
  config.verify_cache_cap = abd_config.verify_cache_cap;
  net::TcpTransport transport(config, keys, Rng::for_stream(seed, 0x6e6f6465 + id));
  if (!transport.start()) {
    std::fprintf(stderr, "amm_node: cannot listen on %s:%u\n", host.c_str(),
                 static_cast<unsigned>(base_port + id));
    return 2;
  }
  const u32 verify_threads = cli.verify_threads;
  std::unique_ptr<ThreadPool> verify_pool;
  if (verify_threads > 0) {
    verify_pool = std::make_unique<ThreadPool>(verify_threads);
    transport.set_verify_pool(verify_pool.get());
  }

  mp::AbdNode node(NodeId{id}, transport, keys, abd_config);

  // Local recovery runs before any wire activity: snapshot + log replay
  // rebuild the pre-crash view, and the advanced watermarks then make the
  // follow-up read below a pure delta fetch.
  u64 replayed = 0;
  if (store != nullptr) replayed = node.recover_from_storage();

  // Control-plane ops dispatch immediately: AbdNode pipelines appends
  // internally (bounded by AbdConfig::max_pipeline, excess queues in
  // order) and correlates reads by read id, so concurrent ctl requests
  // keep the wire full instead of serializing on a single in-flight op.
  struct PendingCtl {
    u64 session = 0;
    net::CtlRequest request;
  };
  std::deque<PendingCtl> ctl_queue;

  transport.set_ctl_handler([&ctl_queue](u64 session, const net::CtlRequest& request) {
    ctl_queue.push_back(PendingCtl{session, request});
  });

  const auto fill_stats = [&] {
    mp::NodeStats stats;
    stats.messages_sent = transport.messages_sent();
    stats.bytes_sent = transport.bytes_sent();
    stats.view_size = node.local_view().size();
    stats.appends_issued = node.appends_issued();
    stats.reconnects = transport.reconnects();
    stats.auth_rejects = transport.auth_rejects();
    stats.sig_rejects = transport.sig_rejects();
    stats.reads_served_full = node.stats().reads_served_full;
    stats.reads_served_delta = node.stats().reads_served_delta;
    stats.read_records_sent = node.stats().read_records_sent;
    stats.read_fallbacks = node.stats().read_fallbacks;
    stats.verify_cache_hits = node.verify_cache_hits() + transport.verify_cache_hits();
    stats.verify_cache_misses = node.verify_cache_misses() + transport.verify_cache_misses();
    stats.verify_cache_evictions =
        node.verify_cache_evictions() + transport.verify_cache_evictions();
    // The checkpoint's count, not the local fold-activity counter: a
    // restarted node that *adopted* its checkpoint folded nothing locally
    // but still summarizes folded_records records.
    stats.records_folded = node.checkpoint().folded_records;
    stats.live_records = node.live_records();
    stats.parked_rejects = node.stats().parked_rejects;
    stats.rss_kb = resident_kb();
    if (store != nullptr) {
      stats.log_bytes = store->stats().log_bytes;
      stats.snapshot_count = store->stats().snapshot_count;
    }
    stats.recovery_replayed_records = node.stats().recovery_replayed_records;
    return stats;
  };

  const auto pump_ops = [&] {
    while (!ctl_queue.empty()) {
      const PendingCtl item = ctl_queue.front();
      ctl_queue.pop_front();
      net::CtlReply reply;
      reply.op = item.request.op;
      switch (item.request.op) {
        case net::CtlOp::kAppend:
          node.begin_append(item.request.value, [&, item] {
            net::CtlReply done;
            done.op = net::CtlOp::kAppend;
            done.ok = true;
            done.status = net::CtlStatus::kOk;
            transport.send_ctl_reply(item.session, done);
          });
          break;
        case net::CtlOp::kRead:
          node.begin_read([&, item](const std::vector<mp::SignedAppend>& view) {
            net::CtlReply done;
            done.op = net::CtlOp::kRead;
            done.ok = true;
            done.status = net::CtlStatus::kOk;
            done.view = view;
            transport.send_ctl_reply(item.session, done);
          });
          break;
        case net::CtlOp::kDecide:
          node.begin_read([&, item](const std::vector<mp::SignedAppend>& view) {
            // In summary mode the quorum view is the live suffix (no peer
            // ships bodies below the reader's fold), so the folded prefix
            // contributes through the checkpoint's vote_sum. Retain/off
            // views still hold every body — plain decide, or the fold
            // would double-count. k below the fold is undecidable in
            // summary mode: the per-record resolution is gone.
            const mp::Checkpoint& ckpt = node.checkpoint();
            const bool summary = compact_mode == "summary" && ckpt.folded_records > 0;
            net::Decision decision;
            bool resolvable = true;
            if (!summary) {
              decision = net::decide_first_k(view, item.request.k);
            } else if (item.request.k >= ckpt.folded_records) {
              decision = net::decide_first_k_with_checkpoint(ckpt, view, item.request.k);
            } else {
              resolvable = false;
            }
            net::CtlReply done;
            done.op = net::CtlOp::kDecide;
            done.ok = resolvable && decision.decided_over > 0;
            // Distinct machine-readable reasons: a cut below the fold is a
            // *refusal* (re-asking cannot help), no k-cut yet is a *not
            // yet* (amm_ctl exits 3 vs 1 accordingly).
            done.status = done.ok          ? net::CtlStatus::kOk
                          : resolvable     ? net::CtlStatus::kUndecided
                                           : net::CtlStatus::kRefusedBelowFold;
            done.decision = decision.sign;
            done.decided_over = decision.decided_over;
            transport.send_ctl_reply(item.session, done);
          });
          break;
        case net::CtlOp::kStats:
          reply.ok = true;
          reply.status = net::CtlStatus::kOk;
          reply.stats = fill_stats();
          transport.send_ctl_reply(item.session, reply);
          break;
        case net::CtlOp::kKick:
          transport.kick_outbound();
          reply.ok = true;
          reply.status = net::CtlStatus::kOk;
          transport.send_ctl_reply(item.session, reply);
          break;
      }
    }
  };

  std::printf("amm_node: id=%u n=%u backend=%s listening on %s:%u\n", id, n,
              transport.backend_name(), host.c_str(),
              static_cast<unsigned>(transport.listen_port()));
  std::fflush(stdout);
  if (store != nullptr) {
    // After the "listening on" line — cluster harnesses gate readiness on
    // that line being first on stdout.
    std::printf("amm_node: id=%u recovered replayed=%llu snapshot=%s view=%zu torn_tail=%llu\n",
                id, static_cast<unsigned long long>(replayed),
                store->load_snapshot() ? "yes" : "no", node.local_view().size(),
                static_cast<unsigned long long>(store->stats().torn_tail_bytes));
    std::fflush(stdout);
  }

  transport.connect_peers();
  if (store != nullptr) {
    // Fetch the tail the cluster appended while we were down. The
    // recovered watermarks ride in the read frontier, so responders ship
    // only records we miss — the delta-only restart path ISSUE/E18
    // measures. Fire-and-forget like the checkpoint sync below.
    node.begin_read([](const std::vector<mp::SignedAppend>&) {});
  }
  if (compact_mode == "summary") {
    // A restarting summary node does not replay the folded prefix record by
    // record: it adopts the quorum-agreed checkpoint and delta-reads only
    // the live suffix (DESIGN.md §8). Fire-and-forget: until the sync
    // completes the node simply serves from an older (empty) checkpoint.
    node.begin_checkpoint_sync([id](bool ok) {
      std::printf("amm_node: id=%u checkpoint sync %s\n", id, ok ? "adopted" : "skipped");
      std::fflush(stdout);
    });
  }
  while (g_stop == 0) {
    transport.poll_once(std::chrono::milliseconds(50));
    pump_ops();
  }

  std::printf("amm_node: id=%u shutting down (view=%zu appends=%u)\n", id,
              node.local_view().size(), node.appends_issued());
  transport.stop();
  return 0;
}
