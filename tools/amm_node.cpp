// amm_node — a real append-memory node: one AbdNode (§4, Algorithms 2–3)
// hosted behind the poll-based TCP transport, plus the DAG BA decision
// rule (§5.3, Algorithm 6) served over the control plane.
//
//   amm_node --id I --n N [--seed S] [--host 127.0.0.1] [--base-port 9500]
//            [--backend auto|poll|epoll] [--verify-threads T]
//            [--high-watermark BYTES] [--low-watermark BYTES]
//
// Node i listens on base-port+i and dials every other node. All nodes of a
// cluster must share --n and --seed: the KeyRegistry is derived from them,
// which is this runtime's stand-in for a deployed PKI (DESIGN.md §2 — the
// simulated-signature substitution, now enforced on real sockets).
//
// Control plane (see amm_ctl): append / read / decide / stats / kick on
// the same port. Operations run through the full ABD protocol — an append
// completes only after a majority of the cluster acked it, a read merges a
// majority of views — so every number amm_ctl prints is a real quorum
// result, not local state.
#include <csignal>
#include <cstdio>
#include <deque>
#include <string>

#include <memory>

#include "mp/abd.hpp"
#include "net/decision.hpp"
#include "net/transport.hpp"
#include "support/cli.hpp"
#include "support/thread_pool.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace amm;

  const CliArgs args(argc, argv);
  const u32 n = static_cast<u32>(args.get_int("n", 5));
  const u32 id = static_cast<u32>(args.get_int("id", 0));
  const u64 seed = static_cast<u64>(args.get_int("seed", 20200715));
  const std::string host = args.get_string("host", "127.0.0.1");
  const u16 base_port = static_cast<u16>(args.get_int("base-port", 9500));
  const std::string backend = args.get_string("backend", "auto");
  const u32 verify_threads = static_cast<u32>(args.get_int("verify-threads", 0));
  if (n == 0 || id >= n) {
    std::fprintf(stderr, "amm_node: need 0 <= --id < --n\n");
    return 2;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  crypto::KeyRegistry keys(n, seed);
  net::TransportConfig config;
  config.self = NodeId{id};
  config.backend = net::parse_loop_backend(backend);
  for (u32 i = 0; i < n; ++i) {
    config.peers.push_back(net::Endpoint{host, static_cast<u16>(base_port + i)});
  }
  config.outbound_high_watermark = static_cast<usize>(
      args.get_int("high-watermark", static_cast<i64>(config.outbound_high_watermark)));
  config.outbound_low_watermark = static_cast<usize>(
      args.get_int("low-watermark", static_cast<i64>(config.outbound_low_watermark)));
  net::TcpTransport transport(config, keys, Rng::for_stream(seed, 0x6e6f6465 + id));
  if (!transport.start()) {
    std::fprintf(stderr, "amm_node: cannot listen on %s:%u\n", host.c_str(),
                 static_cast<unsigned>(base_port + id));
    return 2;
  }
  std::unique_ptr<ThreadPool> verify_pool;
  if (verify_threads > 0) {
    verify_pool = std::make_unique<ThreadPool>(verify_threads);
    transport.set_verify_pool(verify_pool.get());
  }

  mp::AbdNode node(NodeId{id}, transport, keys);

  // Control-plane ops dispatch immediately: AbdNode pipelines appends
  // internally (bounded by AbdConfig::max_pipeline, excess queues in
  // order) and correlates reads by read id, so concurrent ctl requests
  // keep the wire full instead of serializing on a single in-flight op.
  struct PendingCtl {
    u64 session = 0;
    net::CtlRequest request;
  };
  std::deque<PendingCtl> ctl_queue;

  transport.set_ctl_handler([&ctl_queue](u64 session, const net::CtlRequest& request) {
    ctl_queue.push_back(PendingCtl{session, request});
  });

  const auto fill_stats = [&] {
    net::CtlStats stats;
    stats.messages_sent = transport.messages_sent();
    stats.bytes_sent = transport.bytes_sent();
    stats.view_size = node.local_view().size();
    stats.appends_issued = node.appends_issued();
    stats.reconnects = transport.reconnects();
    stats.auth_rejects = transport.auth_rejects();
    stats.sig_rejects = transport.sig_rejects();
    stats.reads_served_full = node.stats().reads_served_full;
    stats.reads_served_delta = node.stats().reads_served_delta;
    stats.read_records_sent = node.stats().read_records_sent;
    stats.read_fallbacks = node.stats().read_fallbacks;
    stats.verify_cache_hits = node.verify_cache_hits() + transport.verify_cache_hits();
    return stats;
  };

  const auto pump_ops = [&] {
    while (!ctl_queue.empty()) {
      const PendingCtl item = ctl_queue.front();
      ctl_queue.pop_front();
      net::CtlReply reply;
      reply.op = item.request.op;
      switch (item.request.op) {
        case net::CtlOp::kAppend:
          node.begin_append(item.request.value, [&, item] {
            net::CtlReply done;
            done.op = net::CtlOp::kAppend;
            done.ok = true;
            transport.send_ctl_reply(item.session, done);
          });
          break;
        case net::CtlOp::kRead:
          node.begin_read([&, item](const std::vector<mp::SignedAppend>& view) {
            net::CtlReply done;
            done.op = net::CtlOp::kRead;
            done.ok = true;
            done.view = view;
            transport.send_ctl_reply(item.session, done);
          });
          break;
        case net::CtlOp::kDecide:
          node.begin_read([&, item](const std::vector<mp::SignedAppend>& view) {
            const net::Decision decision = net::decide_first_k(view, item.request.k);
            net::CtlReply done;
            done.op = net::CtlOp::kDecide;
            done.ok = decision.decided_over > 0;
            done.decision = decision.sign;
            done.decided_over = decision.decided_over;
            transport.send_ctl_reply(item.session, done);
          });
          break;
        case net::CtlOp::kStats:
          reply.ok = true;
          reply.stats = fill_stats();
          transport.send_ctl_reply(item.session, reply);
          break;
        case net::CtlOp::kKick:
          transport.kick_outbound();
          reply.ok = true;
          transport.send_ctl_reply(item.session, reply);
          break;
      }
    }
  };

  std::printf("amm_node: id=%u n=%u backend=%s listening on %s:%u\n", id, n,
              transport.backend_name(), host.c_str(),
              static_cast<unsigned>(transport.listen_port()));
  std::fflush(stdout);

  transport.connect_peers();
  while (g_stop == 0) {
    transport.poll_once(std::chrono::milliseconds(50));
    pump_ops();
  }

  std::printf("amm_node: id=%u shutting down (view=%zu appends=%u)\n", id,
              node.local_view().size(), node.appends_issued());
  transport.stop();
  return 0;
}
