// tools/cli.hpp — the shared options API of the runtime tools (amm_node,
// amm_ctl, amm_swarm, amm_logtool).
//
// Each option is declared exactly once — name, bound variable, help line —
// and everything else follows from the declaration: `--help` text with the
// captured default, `--name value` / `--name=value` parsing, typed range
// checking, enum-membership validation, and unknown-flag rejection (the
// old per-tool CliArgs parsers silently ignored typos).
//
//   tools::NodeConfig cfg;
//   tools::OptionSet opts("amm_node", "one append-memory node");
//   tools::add_node_options(opts, &cfg);
//   switch (opts.parse(argc, argv)) { ... }
//
// NodeConfig is the one struct all node-shaped tools share; the storage
// flags (--store-dir, --fsync, ...) feed storage::FileLogConfig and
// mp::AbdConfig in amm_node.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace amm::tools {

enum class ParseStatus : u8 {
  kOk,    ///< every argument consumed and validated
  kHelp,  ///< -h/--help seen — print_help() and exit 0
  kError, ///< unknown flag, missing value, or failed validation; see error()
};

class OptionSet {
 public:
  OptionSet(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  // One add_* per bound type, with distinct names instead of overloads:
  // usize aliases u64 on LP64, so an overload set could not carry both.

  void add_flag(const std::string& name, bool* out, const std::string& help) {
    options_.push_back(Option{name, help, "", "", true,
                              [out](const std::string&) {
                                *out = true;
                                return true;
                              }});
  }

  void add_string(const std::string& name, std::string* out, const std::string& help) {
    options_.push_back(Option{name, help, *out, "", false,
                              [out](const std::string& text) {
                                *out = text;
                                return true;
                              }});
  }

  /// A string option restricted to a fixed vocabulary; --help lists it and
  /// parse() rejects anything else.
  void add_enum(const std::string& name, std::string* out,
                std::initializer_list<const char*> allowed, const std::string& help) {
    std::vector<std::string> values(allowed.begin(), allowed.end());
    std::string shown;
    for (const std::string& v : values) {
      if (!shown.empty()) shown += '|';
      shown += v;
    }
    options_.push_back(Option{name, help, *out, shown, false,
                              [out, values = std::move(values)](const std::string& text) {
                                for (const std::string& v : values) {
                                  if (text == v) {
                                    *out = text;
                                    return true;
                                  }
                                }
                                return false;
                              }});
  }

  void add_u16(const std::string& name, u16* out, const std::string& help) {
    add_unsigned(name, help, std::to_string(*out), 0xffffu,
                 [out](u64 v) { *out = static_cast<u16>(v); });
  }
  void add_u32(const std::string& name, u32* out, const std::string& help) {
    add_unsigned(name, help, std::to_string(*out), 0xffffffffu,
                 [out](u64 v) { *out = static_cast<u32>(v); });
  }
  void add_u64(const std::string& name, u64* out, const std::string& help) {
    add_unsigned(name, help, std::to_string(*out), ~static_cast<u64>(0),
                 [out](u64 v) { *out = v; });
  }

  void add_i64(const std::string& name, i64* out, const std::string& help) {
    options_.push_back(Option{name, help, std::to_string(*out), "", false,
                              [out](const std::string& text) {
                                if (text.empty()) return false;
                                errno = 0;
                                char* end = nullptr;
                                const long long v = std::strtoll(text.c_str(), &end, 0);
                                if (errno != 0 || end != text.c_str() + text.size()) return false;
                                *out = static_cast<i64>(v);
                                return true;
                              }});
  }

  void add_double(const std::string& name, double* out, const std::string& help) {
    options_.push_back(Option{name, help, std::to_string(*out), "", false,
                              [out](const std::string& text) {
                                if (text.empty()) return false;
                                errno = 0;
                                char* end = nullptr;
                                const double v = std::strtod(text.c_str(), &end);
                                if (errno != 0 || end != text.c_str() + text.size()) return false;
                                *out = v;
                                return true;
                              }});
  }

  /// A required bare (non `--`) argument, e.g. a subcommand; filled in
  /// declaration order. Restricted to `allowed` when nonempty.
  void add_positional(const std::string& name, std::string* out,
                      std::initializer_list<const char*> allowed, const std::string& help) {
    std::vector<std::string> values(allowed.begin(), allowed.end());
    std::string shown;
    for (const std::string& v : values) {
      if (!shown.empty()) shown += '|';
      shown += v;
    }
    positionals_.push_back(Positional{name, help, shown,
                                      [out, values = std::move(values)](const std::string& text) {
                                        if (!values.empty()) {
                                          bool found = false;
                                          for (const std::string& v : values) found = found || text == v;
                                          if (!found) return false;
                                        }
                                        *out = text;
                                        return true;
                                      }});
  }

  ParseStatus parse(int argc, const char* const* argv) {
    usize next_positional = 0;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "-h" || arg == "--help") return ParseStatus::kHelp;
      if (arg.size() < 3 || arg.compare(0, 2, "--") != 0) {
        if (next_positional < positionals_.size()) {
          Positional& pos = positionals_[next_positional++];
          if (!pos.set(arg)) {
            return fail("invalid " + pos.name + " '" + arg + "' (one of: " + pos.allowed + ")");
          }
          continue;
        }
        return fail("unexpected argument '" + arg + "'");
      }
      std::string name = arg.substr(2);
      std::string value;
      bool has_value = false;
      if (const usize eq = name.find('='); eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_value = true;
      }
      Option* opt = find(name);
      if (opt == nullptr) return fail("unknown option --" + name);
      if (opt->is_flag) {
        if (has_value) return fail("--" + name + " takes no value");
        opt->set("");
        continue;
      }
      if (!has_value) {
        if (i + 1 >= argc) return fail("--" + name + " needs a value");
        value = argv[++i];
      }
      if (!opt->set(value)) {
        std::string why = "invalid value '" + value + "' for --" + name;
        if (!opt->allowed.empty()) why += " (one of: " + opt->allowed + ")";
        return fail(why);
      }
    }
    if (next_positional < positionals_.size()) {
      return fail("missing " + positionals_[next_positional].name + " (one of: " +
                  positionals_[next_positional].allowed + ")");
    }
    return ParseStatus::kOk;
  }

  const std::string& error() const { return error_; }

  void print_help(std::FILE* out) const {
    std::string usage = "usage: " + program_;
    for (const Positional& pos : positionals_) usage += " <" + pos.name + ">";
    usage += " [options]";
    std::fprintf(out, "%s — %s\n%s\n", program_.c_str(), summary_.c_str(), usage.c_str());
    for (const Positional& pos : positionals_) {
      std::fprintf(out, "  <%s>%*s%s (one of: %s)\n", pos.name.c_str(),
                   static_cast<int>(pos.name.size() < 24 ? 24 - pos.name.size() : 1), "",
                   pos.help.c_str(), pos.allowed.c_str());
    }
    for (const Option& opt : options_) {
      const std::string left = "--" + opt.name + (opt.is_flag ? "" : " <v>");
      std::string right = opt.help;
      if (!opt.allowed.empty()) right += " (one of: " + opt.allowed + ")";
      if (!opt.is_flag) right += " [default: " + opt.default_repr + "]";
      std::fprintf(out, "  %-26s%s\n", left.c_str(), right.c_str());
    }
    std::fprintf(out, "  %-26s%s\n", "-h, --help", "print this help and exit");
  }

 private:
  struct Option {
    std::string name;
    std::string help;
    std::string default_repr;
    std::string allowed;  ///< rendered vocabulary, enums only
    bool is_flag = false;
    std::function<bool(const std::string&)> set;
  };
  struct Positional {
    std::string name;
    std::string help;
    std::string allowed;
    std::function<bool(const std::string&)> set;
  };

  void add_unsigned(const std::string& name, const std::string& help, std::string default_repr,
                    u64 max, std::function<void(u64)> assign) {
    options_.push_back(Option{name, help, std::move(default_repr), "", false,
                              [max, assign = std::move(assign)](const std::string& text) {
                                if (text.empty() || text.front() == '-') return false;
                                errno = 0;
                                char* end = nullptr;
                                const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
                                if (errno != 0 || end != text.c_str() + text.size()) return false;
                                if (v > max) return false;
                                assign(v);
                                return true;
                              }});
  }

  Option* find(const std::string& name) {
    for (Option& opt : options_) {
      if (opt.name == name) return &opt;
    }
    return nullptr;
  }

  ParseStatus fail(std::string why) {
    error_ = std::move(why);
    return ParseStatus::kError;
  }

  std::string program_;
  std::string summary_;
  std::vector<Option> options_;
  std::vector<Positional> positionals_;
  std::string error_;
};

/// Everything a node-shaped process needs, one field per flag. Callers
/// overwrite the zero-ish defaults that actually come from deeper configs
/// (watermarks, verify-cache capacity) before add_node_options captures
/// them for --help.
struct NodeConfig {
  u32 n = 5;
  u32 id = 0;
  u64 seed = 20200715;
  std::string host = "127.0.0.1";
  u16 base_port = 9500;
  std::string backend = "auto";  // event loop: auto|poll|epoll
  u32 verify_threads = 0;
  u64 high_watermark = 0;  ///< caller seeds from net::TransportConfig
  u64 low_watermark = 0;   ///< caller seeds from net::TransportConfig
  std::string compact = "off";  // off|retain|summary
  u32 compact_lag = 256;   ///< caller seeds from mp::CompactConfig
  u64 verify_cache_cap = 0;  ///< caller seeds from mp::AbdConfig
  std::string store_dir;     ///< empty = memory-only node
  std::string fsync = "interval";  // never|interval|always
  u32 fsync_interval = 64;
  u32 snapshot_interval = 1024;
  u64 segment_bytes = 4u << 20;
};

/// The node option vocabulary, declared once for every tool that hosts or
/// spawns nodes (amm_node today; cluster scripts pass these through).
inline void add_node_options(OptionSet& opts, NodeConfig* cfg) {
  opts.add_u32("n", &cfg->n, "cluster size (all nodes must share --n and --seed)");
  opts.add_u32("id", &cfg->id, "this node's id, 0 <= id < n");
  opts.add_u64("seed", &cfg->seed, "KeyRegistry master seed");
  opts.add_string("host", &cfg->host, "listen/dial host");
  opts.add_u16("base-port", &cfg->base_port, "node i listens on base-port+i");
  opts.add_enum("backend", &cfg->backend, {"auto", "poll", "epoll"}, "event-loop backend");
  opts.add_u32("verify-threads", &cfg->verify_threads,
               "signature-verification worker threads (0 = verify inline)");
  opts.add_u64("high-watermark", &cfg->high_watermark,
               "per-peer outbound backpressure high watermark, bytes");
  opts.add_u64("low-watermark", &cfg->low_watermark,
               "per-peer outbound backpressure low watermark, bytes");
  opts.add_enum("compact", &cfg->compact, {"off", "retain", "summary"},
                "decided-prefix compaction mode (DESIGN.md §8)");
  opts.add_u32("compact-lag", &cfg->compact_lag,
               "records per author kept live behind the stability cut");
  opts.add_u64("verify-cache-cap", &cfg->verify_cache_cap,
               "VerifyCache key capacity (0 = unbounded)");
  opts.add_string("store-dir", &cfg->store_dir,
                  "durable store directory (empty = memory-only, DESIGN.md §10)");
  opts.add_enum("fsync", &cfg->fsync, {"never", "interval", "always"},
                "append-log fsync policy");
  opts.add_u32("fsync-interval", &cfg->fsync_interval,
               "appends between fdatasyncs with --fsync interval");
  opts.add_u32("snapshot-interval", &cfg->snapshot_interval,
               "admissions between automatic snapshots (0 = never)");
  opts.add_u64("segment-bytes", &cfg->segment_bytes, "roll log segments beyond this size");
}

}  // namespace amm::tools
