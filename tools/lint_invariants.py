#!/usr/bin/env python3
"""Repo-invariant lint for the append-memory library.

Enforces the handful of rules the compiler cannot check but the paper's
reproduction depends on (docs/ANALYSIS.md):

  banned-rand       no std::rand/srand/time(nullptr) seeding in src/ or
                    tools/ — every random draw must come from
                    support/rng.hpp so trials are reproducible per
                    (master seed, stream).
  banned-sleep      no wall-clock sleeps in src/ or tools/ — simulated
                    time (or the transport's poll deadline) is the only
                    clock; a sleep makes results machine-dependent.
  unordered-iter    no range-for iteration over std::unordered_* containers
                    in src/ or tools/ — their order is
                    implementation-defined, so any protocol decision fed
                    from it is nondeterministic. SUPERSEDED by the AST-level
                    `determinism-taint` rule of tools/analyze/amm_analyze.py
                    (which also catches iterator loops, algorithms and
                    aliases); the regex path is kept behind --no-ast for
                    machines that cannot run the analyzer. Suppress a
                    deliberate order-insensitive fold with
                    `// lint:allow(unordered-iter)` on the loop line.
  pragma-once       every header under src/, tools/, bench/ or tests/
                    starts with `#pragma once` before its first #include.
  include-order     within a file, system includes (<...>) precede project
                    includes ("..."); a .cpp may lead with its own header,
                    and a *_test.cpp with the header under test.
  no-artifacts      no build artifacts tracked by git (build*/, *.o,
                    CMakeCache.txt, CMakeFiles/, CTest Testing/).

Exit status: 0 = clean, 1 = violations found, 2 = usage error.
`--self-test` runs the checker against seeded violations and known-clean
snippets and exits 0 only if every rule both fires and stays quiet
correctly.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from typing import Iterable, List, NamedTuple


class Violation(NamedTuple):
    path: str
    line: int  # 1-based; 0 = whole file
    rule: str
    message: str

    def render(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"


SOURCE_EXTS = (".hpp", ".cpp")

ALLOW_RE = re.compile(r"//\s*lint:allow\((?P<rules>[\w,\s-]+)\)")

BANNED_RAND_PATTERNS = [
    (re.compile(r"\bstd::rand\b"), "std::rand — use amm::Rng (support/rng.hpp)"),
    (re.compile(r"\bsrand\s*\("), "srand — use amm::Rng::for_stream for seeding"),
    (re.compile(r"(?<!_)\brand\s*\(\s*\)"), "rand() — use amm::Rng (support/rng.hpp)"),
    (
        re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
        "time(nullptr) seeding — seeds must be explicit and reproducible",
    ),
]

BANNED_SLEEP_PATTERNS = [
    (re.compile(r"\bsleep_for\s*\("), "sleep_for — simulated time only, no wall-clock waits"),
    (re.compile(r"\bsleep_until\s*\("), "sleep_until — simulated time only"),
    (re.compile(r"(?<![\w.])\busleep\s*\("), "usleep — simulated time only"),
    (re.compile(r"\bnanosleep\s*\("), "nanosleep — simulated time only"),
    (re.compile(r"(?<![\w.:])sleep\s*\(\s*\d"), "sleep() — simulated time only"),
]

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:flat_)?(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s+(?P<name>\w+)\s*(?:;|=|\{|\()"
)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*(?P<kind>[<"])(?P<target>[^>"]+)[>"]')

ARTIFACT_RES = [
    re.compile(r"(^|/)build[^/]*/"),
    re.compile(r"(^|/)cmake-build[^/]*/"),
    re.compile(r"\.(o|obj|a|so|gcda|gcno|profraw)$"),
    re.compile(r"(^|/)CMakeCache\.txt$"),
    re.compile(r"(^|/)CMakeFiles/"),
    re.compile(r"(^|/)CTestTestfile\.cmake$"),
    re.compile(r"(^|/)Testing/"),
    re.compile(r"(^|/)compile_commands\.json$"),
]


def allowed(line: str, rule: str) -> bool:
    m = ALLOW_RE.search(line)
    if not m:
        return False
    return rule in {r.strip() for r in m.group("rules").split(",")}


def strip_comment(line: str) -> str:
    """Removes a trailing // comment so prose never triggers code rules."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def check_banned_calls(path: str, lines: List[str]) -> Iterable[Violation]:
    for i, raw in enumerate(lines, 1):
        line = strip_comment(raw)
        for pattern, msg in BANNED_RAND_PATTERNS:
            if pattern.search(line) and not allowed(raw, "banned-rand"):
                yield Violation(path, i, "banned-rand", msg)
        for pattern, msg in BANNED_SLEEP_PATTERNS:
            if pattern.search(line) and not allowed(raw, "banned-sleep"):
                yield Violation(path, i, "banned-sleep", msg)


def check_unordered_iteration(path: str, lines: List[str]) -> Iterable[Violation]:
    names = set()
    for raw in lines:
        m = UNORDERED_DECL_RE.search(strip_comment(raw))
        if m:
            names.add(m.group("name"))
    if not names:
        return
    loop_res = [
        re.compile(r"for\s*\([^;)]*:\s*\*?(?:this->)?(?P<name>\w+)\s*\)"),
        re.compile(r"for\s*\([^;)]*:\s*\w+(?:\.|->)(?P<name>\w+)\s*\)"),
    ]
    for i, raw in enumerate(lines, 1):
        line = strip_comment(raw)
        for loop_re in loop_res:
            m = loop_re.search(line)
            if m and m.group("name") in names and not allowed(raw, "unordered-iter"):
                yield Violation(
                    path,
                    i,
                    "unordered-iter",
                    f"range-for over unordered container '{m.group('name')}' — "
                    "iteration order is implementation-defined; iterate a sorted "
                    "or append-ordered copy, or mark an order-insensitive fold "
                    "with // lint:allow(unordered-iter)",
                )


def check_pragma_once(path: str, lines: List[str]) -> Iterable[Violation]:
    if not path.endswith(".hpp"):
        return
    for raw in lines:
        stripped = raw.strip()
        if stripped == "#pragma once":
            return
        if INCLUDE_RE.match(raw) or stripped.startswith(("namespace", "class", "struct")):
            break
    yield Violation(path, 0, "pragma-once", "header must start with #pragma once")


def check_include_order(path: str, lines: List[str]) -> Iterable[Violation]:
    includes = []
    for i, raw in enumerate(lines, 1):
        m = INCLUDE_RE.match(raw)
        if m:
            includes.append((i, m.group("kind"), m.group("target"), raw))
    start = 0
    if path.endswith("_test.cpp") and includes and includes[0][1] == '"':
        start = 1  # header-under-test-first convention (mirrors own-header)
    elif path.endswith(".cpp") and includes and includes[0][1] == '"':
        own = os.path.basename(path)[: -len(".cpp")] + ".hpp"
        if includes[0][2].endswith(own):
            start = 1  # own-header-first convention
    seen_project = False
    for i, kind, target, raw in includes[start:]:
        if kind == '"':
            seen_project = True
        elif seen_project and not allowed(raw, "include-order"):
            yield Violation(
                path,
                i,
                "include-order",
                f"system include <{target}> after a project include — order is: "
                "own header (cpp only), system <...>, then project \"...\"",
            )
            return  # one report per file keeps the output readable


def check_no_artifacts(root: str) -> Iterable[Violation]:
    try:
        out = subprocess.run(
            ["git", "ls-files"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return  # not a git checkout (e.g. a tarball) — nothing to check
    for tracked in out.splitlines():
        for pattern in ARTIFACT_RES:
            if pattern.search(tracked):
                yield Violation(
                    tracked, 0, "no-artifacts", "build artifact tracked by git — `git rm --cached` it"
                )
                break


FILE_CHECKS = [
    check_banned_calls,
    check_unordered_iteration,
    check_pragma_once,
    check_include_order,
]

#: Hygiene-only checks applied to bench/ and tests/: benchmarks and tests
#: legitimately do things production code may not (sleep in socket tests,
#: iterate unordered state they just built), so only the layout rules apply.
LAYOUT_CHECKS = [
    check_pragma_once,
    check_include_order,
]


def lint_file(path: str, display_path: str | None = None,
              checks: list | None = None) -> List[Violation]:
    with open(path, encoding="utf-8", errors="replace") as fh:
        lines = fh.read().splitlines()
    shown = display_path or path
    violations: List[Violation] = []
    for check in checks if checks is not None else FILE_CHECKS:
        violations.extend(check(shown, lines))
    return violations


LINT_DIRS = ("src", "tools")
LAYOUT_DIRS = ("bench", "tests")


def _walk_sources(root: str, top: str):
    for dirpath, dirnames, filenames in os.walk(os.path.join(root, top)):
        # Skip stray build litter and the analyzer's seeded-violation corpus
        # (tools/analyze/selftest/ deliberately violates every rule).
        dirnames[:] = [
            d for d in dirnames
            if d != "CMakeFiles" and not (d == "selftest" and dirpath.endswith("analyze"))
        ]
        for fn in sorted(filenames):
            if fn.endswith(SOURCE_EXTS):
                yield os.path.join(dirpath, fn)


def lint_tree(root: str, *, regex_unordered: bool = False) -> List[Violation]:
    checks = FILE_CHECKS if regex_unordered else \
        [c for c in FILE_CHECKS if c is not check_unordered_iteration]
    violations: List[Violation] = []
    for top in LINT_DIRS:
        for full in _walk_sources(root, top):
            violations.extend(lint_file(full, os.path.relpath(full, root), checks))
    for top in LAYOUT_DIRS:
        for full in _walk_sources(root, top):
            violations.extend(lint_file(full, os.path.relpath(full, root), LAYOUT_CHECKS))
    violations.extend(check_no_artifacts(root))
    return violations


# --------------------------- self-test ---------------------------

SELF_TEST_CASES = [
    # (filename, contents, rules expected to fire)
    (
        "bad_rand.cpp",
        "#include <cstdlib>\nint f() { return std::rand(); }\n"
        "void g() { srand(static_cast<unsigned>(time(nullptr))); }\n",
        {"banned-rand"},
    ),
    (
        "bad_sleep.cpp",
        "#include <thread>\nvoid f() { std::this_thread::sleep_for(std::chrono::seconds(1)); }\n",
        {"banned-sleep"},
    ),
    (
        "bad_unordered.cpp",
        "#include <unordered_map>\n"
        "int f() {\n"
        "  std::unordered_map<int, int> votes;\n"
        "  int sum = 0;\n"
        "  for (const auto& kv : votes) sum = sum * 31 + kv.second;\n"
        "  return sum;\n"
        "}\n",
        {"unordered-iter"},
    ),
    (
        "bad_pragma.hpp",
        "#include <vector>\nnamespace x { inline int f() { return 1; } }\n",
        {"pragma-once"},
    ),
    (
        "bad_order.cpp",
        '#include "support/assert.hpp"\n#include <vector>\nint f();\n',
        {"include-order"},
    ),
    (
        "clean.hpp",
        "#pragma once\n"
        "#include <vector>\n"
        '#include "support/types.hpp"\n'
        "// rand() in prose is fine; so is discussing sleep_for( in a comment.\n"
        "namespace x {\n"
        "std::unordered_map<int, int> m();  // declaration, no iteration\n"
        "}\n",
        set(),
    ),
    (
        # *_test.cpp files lead with the header under test (mirroring the
        # own-header convention); system includes after it are fine.
        "widget_test.cpp",
        '#include "net/widget.hpp"\n#include <vector>\n#include "support/types.hpp"\nint f();\n',
        set(),
    ),
    (
        # ... but only the FIRST project include is exempt.
        "gadget_test.cpp",
        '#include "net/gadget.hpp"\n#include "support/types.hpp"\n#include <vector>\nint f();\n',
        {"include-order"},
    ),
    (
        "allowed.cpp",
        "#include <unordered_set>\n"
        "int f() {\n"
        "  std::unordered_set<int> seen;\n"
        "  int n = 0;\n"
        "  for (int v : seen) n += v;  // lint:allow(unordered-iter)\n"
        "  return n;\n"
        "}\n",
        set(),
    ),
]


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="lint_selftest_") as tmp:
        for name, contents, expected in SELF_TEST_CASES:
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(contents)
            fired = {v.rule for v in lint_file(path, name)}
            if expected and not expected <= fired:
                print(f"self-test FAIL: {name}: expected {sorted(expected)}, got {sorted(fired)}")
                failures += 1
            elif not expected and fired:
                print(f"self-test FAIL: {name}: expected clean, got {sorted(fired)}")
                failures += 1
            else:
                print(f"self-test ok: {name}: {sorted(fired) if fired else 'clean'}")
    if failures:
        print(f"self-test: {failures} case(s) failed")
        return 1
    print(f"self-test: all {len(SELF_TEST_CASES)} cases passed")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=".", help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true", help="verify the checker against seeded violations")
    parser.add_argument(
        "--no-ast",
        action="store_true",
        help="also run the regex unordered-iter rule (fallback for machines that "
        "cannot run tools/analyze/amm_analyze.py, which supersedes it with the "
        "AST-level determinism-taint rule)",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"lint_invariants: no src/ under {root}", file=sys.stderr)
        return 2

    violations = lint_tree(root, regex_unordered=args.no_ast)
    for v in violations:
        print(v.render())
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)")
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
