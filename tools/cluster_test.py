#!/usr/bin/env python3
"""Loopback cluster integration test for amm_node / amm_ctl.

Spawns n real amm_node processes on 127.0.0.1, drives >= --appends appends
through amm_ctl (pipelined with --window), SIGKILLs floor((n-1)/2) nodes
mid-run, forces the survivors' outbound links down (kick) so reconnect
paths are exercised, keeps appending, and then asserts the paper's §4
guarantees end-to-end:

  * Lemma 4.2 — every append whose ctl reply reported completion is
    present in every survivor's subsequent quorum read;
  * Algorithm 6 — the survivors' DAG BA decisions (sign of the first-k
    prefix of the canonical record order) agree exactly;
  * DESIGN.md §9 — steady-state delta reads stay sub-linear in history
    (wire bytes per read far below the full-view cost), and a restarted
    node full-syncs exactly once before returning to cheap delta reads.

Exit status 0 iff every assertion holds. Registered as the ctest/CI
`cluster_loopback` job. With --json FILE the measured byte costs are
written as a JSON document for the CI artifact / bench fold-in.

With --durable the default scenario is replaced by the crash-recovery
gauntlet (DESIGN.md §10): every node runs with --store-dir, one node is
SIGKILLed in the middle of an append batch, its store's log tail is
smeared with garbage (the torn-frame crash artifact), amm_logtool must
detect (verify -> exit 1), repair (truncate) and re-certify (verify ->
exit 0) the store offline, and the restarted node must recover its view
from local replay plus a delta-only tail fetch — asserted both on bytes
(within 2x the ideal delta cost, far below a full history sync) and on
state (its quorum read agrees with every survivor's and contains every
completed append).

With --mem-soak the default scenario is replaced by a memory soak
(DESIGN.md §8): the same append load is driven twice — once with
compaction off (the unbounded node) and once in summary mode — and each
node 0's live-record count and resident set are sampled after every
round. Asserts that summary-mode live records stay strictly below the
unbounded history while compaction folds a nonzero prefix; rss_kb is
reported for the bench fold-in (report-only — allocator noise makes a
hard byte assertion flaky) where bench_diff treats the [KB]/[records]
columns as lower-is-better metrics.

Usage:
  tools/cluster_test.py --bin-dir build/tools [--n 5] [--appends 1000] [--json out.json]
  tools/cluster_test.py --bin-dir build/tools --mem-soak [--json mem_soak.json]
"""

from __future__ import annotations

import argparse
import json
import random
import re
import select
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

RECORD_WIRE_BYTES = 28  # one signed append record on the wire (codec.cpp)


class ClusterError(Exception):
    pass


def log(msg: str) -> None:
    print(f"[cluster_test] {msg}", flush=True)


def read_line(proc: subprocess.Popen, deadline: float) -> str:
    """Reads one stdout line from proc, raising on timeout or process exit."""
    fd = proc.stdout.fileno()
    buf = b""
    while not buf.endswith(b"\n"):
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise ClusterError(f"timeout waiting for output from pid {proc.pid}")
        ready, _, _ = select.select([fd], [], [], remaining)
        if not ready:
            continue
        chunk = proc.stdout.read1(4096)
        if not chunk:
            raise ClusterError(f"node pid {proc.pid} exited before becoming ready")
        buf += chunk
    return buf.decode(errors="replace").splitlines()[0]


class Cluster:
    def __init__(self, bin_dir: Path, n: int, seed: int,
                 node_args: tuple[str, ...] = ()):
        self.node_bin = bin_dir / "amm_node"
        self.ctl_bin = bin_dir / "amm_ctl"
        self.n = n
        self.seed = seed
        self.node_args = list(node_args)
        self.base_port = 0
        self.procs: list[subprocess.Popen | None] = []

    def start(self, attempts: int = 10) -> None:
        rng = random.Random()
        for _ in range(attempts):
            self.base_port = rng.randrange(20000, 55000)
            if self._try_start():
                return
        raise ClusterError(f"could not find a free port range in {attempts} attempts")

    def args_for(self, i: int) -> list[str]:
        """Per-node extra args: a literal `{id}` in any node_args element is
        replaced with the node id (how --durable gives each node its own
        --store-dir)."""
        return [a.replace("{id}", str(i)) for a in self.node_args]

    def _try_start(self) -> bool:
        self.procs = []
        for i in range(self.n):
            cmd = [str(self.node_bin), "--id", str(i), "--n", str(self.n),
                   "--seed", str(self.seed), "--base-port", str(self.base_port),
                   *self.args_for(i)]
            self.procs.append(subprocess.Popen(cmd, stdout=subprocess.PIPE,
                                               stderr=subprocess.STDOUT))
        deadline = time.monotonic() + 10
        try:
            for i, proc in enumerate(self.procs):
                line = read_line(proc, deadline)
                if "listening on" not in line:
                    raise ClusterError(f"node {i} not ready: {line!r}")
        except ClusterError as err:
            log(f"startup on base port {self.base_port} failed ({err}); retrying")
            self.stop_all()
            return False
        log(f"{self.n} nodes up on 127.0.0.1:{self.base_port}..{self.base_port + self.n - 1}")
        return True

    def port(self, i: int) -> int:
        return self.base_port + i

    def alive(self) -> list[int]:
        return [i for i, p in enumerate(self.procs) if p is not None]

    def ctl(self, node: int, *op_args: str, timeout: float = 60.0) -> str:
        cmd = [str(self.ctl_bin), "--port", str(self.port(node)), *op_args]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout)
        if proc.returncode != 0:
            raise ClusterError(f"{' '.join(cmd)} -> exit {proc.returncode}: {proc.stderr.strip()}")
        return proc.stdout

    def kill(self, node: int) -> None:
        proc = self.procs[node]
        assert proc is not None
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        proc.stdout.close()
        self.procs[node] = None
        log(f"node {node} SIGKILLed")

    def restart(self, node: int) -> None:
        """Relaunches a killed node with its original identity (same id, n,
        seed, port) and a blank view — the reconnect + full-sync-once case."""
        assert self.procs[node] is None
        cmd = [str(self.node_bin), "--id", str(node), "--n", str(self.n),
               "--seed", str(self.seed), "--base-port", str(self.base_port),
               *self.args_for(node)]
        proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        line = read_line(proc, time.monotonic() + 10)
        if "listening on" not in line:
            raise ClusterError(f"restarted node {node} not ready: {line!r}")
        self.procs[node] = proc
        log(f"node {node} restarted on port {self.port(node)}")

    def stats(self, node: int) -> dict[str, int]:
        out = self.ctl(node, "--op", "stats")
        return {m.group(1): int(m.group(2))
                for m in re.finditer(r"([a-z_]+)=(\d+)", out)}

    def total_bytes(self) -> int:
        """Sum of bytes_sent over every alive node — the cluster-wide wire
        volume counter used for per-operation byte deltas."""
        return sum(self.stats(node)["bytes"] for node in self.alive())

    def stop_all(self) -> None:
        for i, proc in enumerate(self.procs):
            if proc is None:
                continue
            proc.terminate()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            proc.stdout.close()
            self.procs[i] = None


def append_batch(cluster: Cluster, targets: list[int], per_node: int,
                 next_value: int, completed: set[int]) -> int:
    """Issues per_node appends to every target concurrently; returns the next
    unused value. Values are globally unique so each append is identifiable
    in later reads."""
    jobs = []
    for node in targets:
        cmd = [str(cluster.ctl_bin), "--port", str(cluster.port(node)), "--op", "append",
               "--value", str(next_value), "--count", str(per_node), "--window", "8"]
        jobs.append((node, next_value, subprocess.Popen(cmd, stdout=subprocess.PIPE,
                                                        stderr=subprocess.STDOUT, text=True)))
        next_value += per_node
    for node, first, proc in jobs:
        out, _ = proc.communicate(timeout=120)
        match = re.search(r"appended count=(\d+) first=(-?\d+)", out)
        if proc.returncode != 0 or not match:
            raise ClusterError(f"append batch on node {node} failed: {out.strip()}")
        count = int(match.group(1))
        completed.update(range(first, first + count))
        if count != per_node:
            raise ClusterError(f"node {node} completed only {count}/{per_node} appends")
    return next_value


def read_values(cluster: Cluster, node: int) -> list[int]:
    out = cluster.ctl(node, "--op", "read")
    return [int(m.group(1)) for m in re.finditer(r"value=(-?\d+)", out)]


def read_cost(cluster: Cluster, node: int) -> tuple[int, int]:
    """Performs one quorum read at `node`; returns (wire bytes, view size).
    Bytes are measured as the cluster-wide bytes_sent delta, so they cover
    the read requests AND every responder's reply."""
    before = cluster.total_bytes()
    view = read_values(cluster, node)
    return cluster.total_bytes() - before, len(view)


def logtool(args, *tool_args: str) -> tuple[int, str]:
    """Runs amm_logtool; returns (exit status, stdout+stderr)."""
    proc = subprocess.run([str(args.bin_dir / "amm_logtool"), *tool_args],
                          capture_output=True, text=True, timeout=60)
    return proc.returncode, proc.stdout + proc.stderr


def run_durable(args) -> None:
    """Crash-recovery gauntlet: SIGKILL mid-write, offline repair, restart
    with local replay + delta-only tail fetch (DESIGN.md §10)."""
    store_root = Path(tempfile.mkdtemp(prefix="amm_durable_"))
    node_args = ("--store-dir", str(store_root / "store{id}"),
                 "--fsync", "always", "--snapshot-interval", "32")
    cluster = Cluster(args.bin_dir, args.n, args.seed, node_args=node_args)
    cluster.start()
    completed: set[int] = set()
    try:
        # Phase 1: the bulk of the history lands while every node is up, so
        # the store under the crash has real segments and snapshots in it.
        phase1_per_node = (args.appends * 85 // 100) // args.n + 1
        value = append_batch(cluster, list(range(args.n)), phase1_per_node, 1, completed)
        log(f"phase 1: {len(completed)} appends completed, durable stores populated")

        # SIGKILL the highest node in the middle of an append batch it is
        # itself driving — the canonical torn-write crash.
        target = args.n - 1
        kill_batch = 64
        kill_first = value
        job = subprocess.Popen(
            [str(cluster.ctl_bin), "--port", str(cluster.port(target)), "--op", "append",
             "--value", str(value), "--count", str(kill_batch), "--window", "8"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        value += kill_batch
        time.sleep(0.15)
        cluster.kill(target)
        job.communicate(timeout=60)  # the driver dies with its node; ignore
        survivors = cluster.alive()

        # Smear garbage over the log tail so the crash artifact is there
        # deterministically (a real mid-write kill only sometimes tears).
        store_dir = store_root / f"store{target}"
        segments = sorted(store_dir.glob("seg-*.log"))
        if not segments:
            raise ClusterError(f"no segments in {store_dir}")
        with segments[-1].open("ab") as f:
            f.write(b"\x17" * 17)

        # Offline repair flow: verify must flag the torn tail and fail,
        # truncate must cut it, verify must then certify a clean store.
        status, out = logtool(args, "verify", "--dir", str(store_dir),
                              "--n", str(args.n), "--seed", str(args.seed))
        if status != 1 or "kind=torn_tail" not in out:
            raise ClusterError(f"verify missed the torn tail (exit {status}): {out.strip()}")
        status, out = logtool(args, "truncate", "--dir", str(store_dir))
        if status != 0 or "cut_bytes=" not in out:
            raise ClusterError(f"truncate failed (exit {status}): {out.strip()}")
        status, out = logtool(args, "verify", "--dir", str(store_dir),
                              "--n", str(args.n), "--seed", str(args.seed))
        if status != 0 or "faults=0" not in out:
            raise ClusterError(f"store still faulty after repair (exit {status}): {out.strip()}")
        log(f"offline repair: torn tail detected, truncated, store re-certified clean")

        # Phase 2 while the target is down — the tail it must later fetch
        # over the wire (and the only part it should pay wire bytes for).
        phase2_per_node = (args.appends - len(completed)) // len(survivors) + 1
        append_batch(cluster, survivors, phase2_per_node, value, completed)
        if len(completed) < args.appends:
            raise ClusterError(f"only {len(completed)} < {args.appends} appends completed")
        survivor_view = read_values(cluster, survivors[0])
        history = len(survivor_view)
        partials = len([v for v in survivor_view if kill_first <= v < kill_first + kill_batch])
        phase2_total = len([v for v in survivor_view if v >= kill_first + kill_batch])
        log(f"phase 2: history {history} ({phase2_total} + {partials} partials "
            f"appended while node {target} was down)")

        steady_bytes, steady_view = read_cost(cluster, survivors[0])
        if steady_view != history:
            raise ClusterError(f"steady read view {steady_view} != history {history}")

        # Restart on the repaired store. Recovery itself is local (snapshot
        # + log replay); the wire pays only for the missed tail.
        before_bytes = cluster.total_bytes()
        cluster.restart(target)
        deadline = time.monotonic() + 30
        while cluster.stats(target).get("view", 0) < history:
            if time.monotonic() > deadline:
                raise ClusterError(
                    f"restarted node stuck at view "
                    f"{cluster.stats(target).get('view', 0)} < {history}")
            time.sleep(0.2)
        restart_bytes = cluster.total_bytes() - before_bytes

        stats = cluster.stats(target)
        if stats.get("recovery_replayed_records", 0) == 0:
            raise ClusterError(f"restarted node replayed nothing from its log: {stats}")
        if stats.get("snapshot_count", 0) == 0:
            raise ClusterError(f"restarted node loaded/wrote no snapshot: {stats}")
        if stats.get("log_bytes", 0) == 0:
            raise ClusterError(f"restarted node reports an empty log: {stats}")
        log(f"recovery: replayed {stats['recovery_replayed_records']} records locally, "
            f"log_bytes={stats['log_bytes']}, snapshots={stats['snapshot_count']}")

        # The §10 byte assertion: restart wire cost within 2x the ideal
        # delta (steady read overhead + peers shipping exactly the missed
        # records), and nowhere near a full history sync.
        missed = phase2_total + partials
        ideal = steady_bytes + (args.n - 1) * missed * RECORD_WIRE_BYTES
        full_estimate = (args.n - 1) * history * RECORD_WIRE_BYTES
        log(f"restart wire bytes {restart_bytes} (ideal delta {ideal}, "
            f"full-sync estimate {full_estimate})")
        if restart_bytes > 2 * ideal:
            raise ClusterError(
                f"restart cost {restart_bytes} B exceeds 2x ideal delta {ideal} B "
                f"— recovery is not delta-only")
        if restart_bytes * 3 > full_estimate:
            raise ClusterError(
                f"restart cost {restart_bytes} B is within 3x of a full history "
                f"sync ({full_estimate} B) — local replay bought nothing")

        # State assertion: the recovered node's quorum read is exactly the
        # survivors' — every completed append present, nothing invented.
        recovered_view = read_values(cluster, target)
        if sorted(recovered_view) != sorted(survivor_view):
            raise ClusterError(
                f"recovered view ({len(recovered_view)} records) differs from "
                f"survivor view ({len(survivor_view)} records)")
        missing = completed - set(recovered_view)
        if missing:
            raise ClusterError(
                f"recovered node misses {len(missing)} completed appends, "
                f"e.g. {sorted(missing)[:5]}")
        log(f"recovered node {target}: view matches survivors, "
            f"all {len(completed)} completed appends present")

        if args.json is not None:
            args.json.write_text(json.dumps({
                "title": "cluster durable restart",
                "tables": [{
                    "caption": "restart wire cost",
                    "table": {
                        "headers": ["n", "history", "path", "bytes [B]"],
                        "rows": [
                            [str(args.n), str(history), "steady_delta_read", str(steady_bytes)],
                            [str(args.n), str(history), "durable_restart", str(restart_bytes)],
                            [str(args.n), str(history), "restart_ideal_delta", str(ideal)],
                            [str(args.n), str(history), "restart_full_sync_estimate",
                             str(full_estimate)],
                        ],
                    },
                }],
            }, indent=2) + "\n")
            log(f"wrote {args.json}")
        log("PASS")
    except ClusterError as err:
        log(f"FAIL: {err}")
        sys.exit(1)
    finally:
        cluster.stop_all()
        shutil.rmtree(store_root, ignore_errors=True)


def run_mem_soak(args) -> None:
    """Memory-vs-history soak: identical load, compaction off vs summary."""
    rounds = 4
    per_round_per_node = args.appends // rounds // args.n + 1
    modes = {
        "off": (),
        # lag 8 so the quantized cut activates within the soak's history
        # (the production default of 256 records/author is sized for real
        # deployments, not a 1k-append smoke run).
        "summary": ("--compact", "summary", "--compact-lag", "8"),
    }
    samples: dict[str, list[dict[str, int]]] = {}
    try:
        for mode, extra in modes.items():
            cluster = Cluster(args.bin_dir, args.n, args.seed, node_args=extra)
            cluster.start()
            try:
                completed: set[int] = set()
                value = 1
                rows = []
                for _ in range(rounds):
                    value = append_batch(cluster, list(range(args.n)),
                                         per_round_per_node, value, completed)
                    # One quorum read settles node 0's view (read repair pulls
                    # in records still in flight) before sampling.
                    read_values(cluster, 0)
                    stats = cluster.stats(0)
                    rows.append({"history": len(completed),
                                 "live": stats["live_records"],
                                 "folded": stats["records_folded"],
                                 "rss_kb": stats["rss_kb"]})
                    log(f"mode={mode} history={len(completed)} "
                        f"live={stats['live_records']} folded={stats['records_folded']} "
                        f"rss_kb={stats['rss_kb']}")
                samples[mode] = rows
                if mode == "summary" and rows[-1]["folded"] > 1:
                    # A decide whose k lies below the compaction fold must
                    # fail with a machine-readable reason (exit 3), distinct
                    # from plain k-undecided (exit 1) — the old behaviour
                    # exited 0 and scripts treated the refusal as a decision.
                    proc = subprocess.run(
                        [str(cluster.ctl_bin), "--port", str(cluster.port(0)),
                         "--op", "decide", "--k", "1"],
                        capture_output=True, text=True, timeout=60)
                    out = proc.stdout + proc.stderr
                    if proc.returncode != 3 or "reason=refused_below_fold" not in out:
                        raise ClusterError(
                            f"decide below fold: want exit 3 + refused_below_fold, "
                            f"got exit {proc.returncode}: {out.strip()}")
                    log("decide below fold refused with exit 3 reason=refused_below_fold")
            finally:
                cluster.stop_all()

        history = samples["off"][-1]["history"]
        off_live = samples["off"][-1]["live"]
        sum_live = samples["summary"][-1]["live"]
        sum_folded = samples["summary"][-1]["folded"]
        if off_live != history:
            raise ClusterError(f"uncompacted node holds {off_live} != history {history}")
        if sum_folded == 0:
            raise ClusterError("summary mode folded nothing over the whole soak")
        if sum_live + sum_folded < history:
            raise ClusterError(
                f"summary node lost records: live {sum_live} + folded {sum_folded} "
                f"< history {history}")
        if sum_live * 2 >= off_live:
            raise ClusterError(
                f"summary live records {sum_live} not well below unbounded {off_live}")
        log(f"mem soak: unbounded live={off_live}, summary live={sum_live} "
            f"(folded {sum_folded}) at history {history}")

        if args.json is not None:
            args.json.write_text(json.dumps({
                "title": "cluster memory soak: compaction off vs summary",
                "tables": [{
                    "caption": "resident memory vs history",
                    "table": {
                        "headers": ["mode", "round", "history",
                                    "live [records]", "rss [KB]"],
                        "rows": [[mode, str(r), str(row["history"]),
                                  str(row["live"]), str(row["rss_kb"])]
                                 for mode, rows in samples.items()
                                 for r, row in enumerate(rows, start=1)],
                    },
                }],
            }, indent=2) + "\n")
            log(f"wrote {args.json}")
        log("PASS")
    except ClusterError as err:
        log(f"FAIL: {err}")
        sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bin-dir", type=Path, default=Path("build/tools"))
    ap.add_argument("--n", type=int, default=5)
    ap.add_argument("--appends", type=int, default=1000,
                    help="minimum total completed appends across both phases")
    ap.add_argument("--seed", type=int, default=20200715)
    ap.add_argument("--json", type=Path, default=None,
                    help="write measured byte costs to this file as JSON")
    ap.add_argument("--mem-soak", action="store_true",
                    help="run the compaction memory soak instead of the default scenario")
    ap.add_argument("--durable", action="store_true",
                    help="run the crash-recovery gauntlet instead of the default scenario")
    args = ap.parse_args()
    if args.n < 3:
        sys.exit("error: need --n >= 3 for a meaningful minority crash")
    if args.mem_soak:
        run_mem_soak(args)
        return
    if args.durable:
        run_durable(args)
        return

    cluster = Cluster(args.bin_dir, args.n, args.seed)
    cluster.start()
    completed: set[int] = set()
    try:
        # Phase 1: appends through every node (authors include the nodes
        # that will be killed — their completed records must still survive).
        phase1_per_node = (args.appends * 6 // 10) // args.n + 1
        value = append_batch(cluster, list(range(args.n)), phase1_per_node, 1, completed)
        log(f"phase 1: {len(completed)} appends completed across {args.n} nodes")

        # Crash a minority mid-run: floor((n-1)/2) highest-numbered nodes.
        for node in range(args.n - (args.n - 1) // 2, args.n):
            cluster.kill(node)
        survivors = cluster.alive()

        # Force every survivor's outbound links down — phase 2 must ride
        # on reconnected sockets with the backoff/salvage path exercised.
        for node in survivors:
            cluster.ctl(node, "--op", "kick")
        log(f"survivors {survivors} kicked; continuing appends")

        remaining = args.appends - len(completed)
        phase2_per_node = remaining // len(survivors) + 1
        append_batch(cluster, survivors, phase2_per_node, value, completed)
        log(f"phase 2: {len(completed)} total appends completed")
        if len(completed) < args.appends:
            raise ClusterError(f"only {len(completed)} < {args.appends} appends completed")

        # Lemma 4.2: every completed append is in every survivor's read.
        for node in survivors:
            view = read_values(cluster, node)
            missing = completed - set(view)
            if missing:
                raise ClusterError(
                    f"node {node} read misses {len(missing)} completed appends, "
                    f"e.g. {sorted(missing)[:5]}")
            log(f"node {node} read: view={len(view)} contains all {len(completed)} appends")

        # Algorithm 6: identical decisions on every survivor.
        k = len(completed)
        decisions = set()
        for node in survivors:
            out = cluster.ctl(node, "--op", "decide", "--k", str(k))
            match = re.search(r"decision=([+-]\d+) over=(\d+)", out)
            if not match:
                raise ClusterError(f"node {node} decide output unparseable: {out.strip()}")
            decisions.add((int(match.group(1)), int(match.group(2))))
        if len(decisions) != 1:
            raise ClusterError(f"survivors disagree: {sorted(decisions)}")
        decision, over = next(iter(decisions))
        log(f"all survivors decide {decision:+d} over {over} records")

        # The kick above must have produced real reconnects.
        for node in survivors:
            stats = cluster.stats(node)
            if stats.get("reconnects", 0) < 1:
                raise ClusterError(f"node {node} shows no reconnects after kick: {stats}")

        # §9 sub-linearity: a synced survivor's steady-state read ships only
        # protocol overhead, far below the full-view cost of the same read
        # (|alive| replies x history x 28 B/record).
        history = len(completed)
        full_estimate = len(survivors) * history * RECORD_WIRE_BYTES
        steady_bytes, steady_view = read_cost(cluster, survivors[0])
        log(f"steady-state read: {steady_bytes} B over history {history} "
            f"(full-view estimate {full_estimate} B)")
        if steady_view != history:
            raise ClusterError(f"steady read view {steady_view} != history {history}")
        if steady_bytes * 10 >= full_estimate:
            raise ClusterError(
                f"steady-state read cost {steady_bytes} B is not sub-linear in "
                f"history (full-view estimate {full_estimate} B)")

        # Restart one killed node with a blank view: its first read must
        # full-sync (frontier at zero -> responders ship whole views), its
        # second must be back on cheap deltas.
        restarted = args.n - 1
        pre_reconnects = {node: cluster.stats(node).get("reconnects", 0)
                          for node in survivors}
        cluster.restart(restarted)
        deadline = time.monotonic() + 30
        while any(cluster.stats(node).get("reconnects", 0) <= pre_reconnects[node]
                  for node in survivors):
            if time.monotonic() > deadline:
                raise ClusterError("survivors never reconnected to the restarted node")
            time.sleep(0.2)
        time.sleep(0.5)  # let queued frames toward the revived peer flush

        sync_bytes, sync_view = read_cost(cluster, restarted)
        delta_bytes, delta_view = read_cost(cluster, restarted)
        log(f"restarted node {restarted}: full-sync read {sync_bytes} B, "
            f"steady read {delta_bytes} B (views {sync_view}/{delta_view})")
        if sync_view != history or delta_view != history:
            raise ClusterError(
                f"restarted node reads {sync_view}/{delta_view} != history {history}")
        if sync_bytes <= 10 * delta_bytes:
            raise ClusterError(
                f"restarted node did not return to deltas: full-sync {sync_bytes} B "
                f"vs steady {delta_bytes} B (need > 10x)")

        if args.json is not None:
            # Harness-document shape: collect_bench.py --extra folds this in
            # and bench_diff.py diffs the [B] columns like any other metric.
            args.json.write_text(json.dumps({
                "title": "cluster loopback delta reads",
                "tables": [{
                    "caption": "read wire cost",
                    "table": {
                        "headers": ["n", "history", "read", "bytes [B]"],
                        "rows": [
                            [str(args.n), str(history), "steady_survivor", str(steady_bytes)],
                            [str(args.n), str(history), "restart_full_sync", str(sync_bytes)],
                            [str(args.n), str(history), "restart_steady", str(delta_bytes)],
                        ],
                    },
                }],
            }, indent=2) + "\n")
            log(f"wrote {args.json}")

        log("PASS")
    except ClusterError as err:
        log(f"FAIL: {err}")
        sys.exit(1)
    finally:
        cluster.stop_all()


if __name__ == "__main__":
    main()
