// E14 — the permissionless extension (§5: "all the presented results can
// be trivially extended to the permissionless setting").
//
// Nodes hold hash-power weights instead of identities with equal rates;
// what matters is the adversary's POWER share α, not its node count. We
// give the Byzantine side few nodes but heavy weights (and vice versa) and
// show both structures behave exactly as E6/E8 predict with t/n replaced
// by α: the DAG's boundary sits at α = 1/2; the chain's at the rate
// condition λ_byz = α·λ·n < 1.
#include <iostream>

#include "exp/harness.hpp"
#include "exp/montecarlo.hpp"
#include "protocols/chain_ba.hpp"
#include "protocols/dag_ba.hpp"

using namespace amm;

namespace {

/// Weights giving the t Byzantine nodes a total power share `alpha`.
std::vector<double> power_split(u32 n, u32 t, double alpha) {
  std::vector<double> w(n, 0.0);
  for (u32 i = 0; i < n - t; ++i) w[i] = (1.0 - alpha) / static_cast<double>(n - t);
  for (u32 i = n - t; i < n; ++i) w[i] = alpha / static_cast<double>(t);
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E14 — permissionless (hash-power) setting (§5 extension)", 150);

  const u32 n = 20;
  const u32 k = 101;
  const double lambda = 0.25;  // per-node average; merged rate λ·n

  Table table({"byz nodes t", "byz power alpha", "alpha*lambda*n", "chain validity",
               "DAG validity"});
  for (const u32 t : {2u, 10u}) {  // few heavy nodes vs many light nodes
    for (const double alpha : {0.1, 0.2, 0.3, 0.4, 0.45, 0.55}) {
      proto::ChainParams cp;
      cp.scenario.n = n;
      cp.scenario.t = t;
      cp.k = 61;
      cp.lambda = lambda;
      cp.adversary = proto::ChainAdversary::kRushExtend;
      cp.weights = power_split(n, t, alpha);

      proto::DagParams dp;
      dp.scenario.n = n;
      dp.scenario.t = t;
      dp.k = k;
      dp.lambda = lambda;
      dp.adversary = proto::DagAdversary::kRateAndWithhold;
      dp.weights = power_split(n, t, alpha);

      const auto chain_est = exp::estimate_rate(
          h.pool, h.seed ^ (t * 1000 + static_cast<u64>(alpha * 100)), h.trials,
          [&](usize, Rng& rng) {
            const auto out = proto::run_chain_continuous(cp, rng);
            return out.terminated && out.validity(cp.scenario);
          });
      const auto dag_est = exp::estimate_rate(
          h.pool, h.seed ^ (t * 1000 + static_cast<u64>(alpha * 100) + 7), h.trials,
          [&](usize, Rng& rng) {
            const auto res = proto::run_dag_continuous(dp, rng);
            return res.outcome.terminated && res.outcome.validity(dp.scenario);
          });
      table.add_row({std::to_string(t), fmt(alpha, 2), fmt(alpha * lambda * n, 2),
                     fmt(chain_est.rate(), 2), fmt(dag_est.rate(), 2)});
    }
  }
  h.emit(table,
         "Identical power shares with t=2 heavy vs t=10 light Byzantine nodes must\n"
         "behave alike: resilience is a function of power alpha, not node count.\n"
         "DAG boundary at alpha ~ 1/2; chain collapses once alpha*lambda*n >= 1:");
  return 0;
}
