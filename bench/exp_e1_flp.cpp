// E1 — Theorem 2.1: no t-resilient deterministic consensus in the
// asynchronous append memory.
//
// The checker explores the full computation graph of each candidate
// protocol for every initial input vector, classifies valencies and
// reports the failure mode Theorem 2.1 guarantees: a safety violation,
// a resilience violation, or an FLP witness (bivalent initial
// configuration + Lemma 2.3 extension everywhere → a fair schedule that
// never decides).
#include <iostream>

#include "check/explorer.hpp"
#include "exp/harness.hpp"

using namespace amm;

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E1 — asynchronous impossibility (Theorem 2.1)", 1);

  const u32 n = static_cast<u32>(h.args.get_int("n", 3));

  std::vector<std::unique_ptr<check::AsyncProtocol>> protocols;
  protocols.push_back(check::make_decide_own_input());
  protocols.push_back(check::make_min_author_race(n));
  protocols.push_back(check::make_wait_for_all(n));
  protocols.push_back(check::make_majority_race(n));
  protocols.push_back(check::make_two_phase_majority(n));

  Table table({"protocol", "n", "configs", "bivalent init", "lemma 2.3", "fair witness",
               "verdict"});
  for (const auto& p : protocols) {
    const check::ExploreResult res = check::explore(*p, n);
    std::string init = "-";
    if (res.bivalent_initial) {
      init = "yes (";
      for (const u8 b : *res.bivalent_initial) init += static_cast<char>('0' + b);
      init += ")";
    }
    std::string witness = "-";
    if (!res.witness_cycle.empty()) {
      witness = std::to_string(res.witness_prefix.size()) + "+(" +
                std::to_string(res.witness_cycle.size()) + ")* steps";
    } else if (!res.witness_prefix.empty()) {
      witness = ">= " + std::to_string(res.witness_prefix.size()) + " steps";
    }
    table.add_row({res.protocol, std::to_string(res.n), std::to_string(res.configs_explored),
                   init, res.lemma23_holds ? "holds" : "escape", witness, res.verdict()});
  }
  h.emit(table,
         "Every candidate fails consensus in at least one way — the executable\n"
         "content of Theorem 2.1. \"fair witness\" is an explicit never-deciding\n"
         "schedule: a step prefix followed by a repeating cycle of bivalent\n"
         "configurations in which every live node steps:");
  return 0;
}
