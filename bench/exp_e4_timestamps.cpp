// E4 — Theorem 5.2: the absolute-timestamp baseline (Algorithm 4).
//
// Agreement and termination are deterministic; validity holds w.h.p. with
// a failure probability governed by the correct/Byzantine gap:
//   gap = n - 2t = Θ(1) → k = Ω(n log n) appends needed,
//   gap = Θ(n)          → k = Ω(log n) suffices.
// The table reports measured validity-failure rates next to the paper's
// normal-tail prediction for both regimes.
#include <iostream>

#include "exp/harness.hpp"
#include "exp/montecarlo.hpp"
#include "protocols/timestamp_ba.hpp"

using namespace amm;

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E4 — Byzantine agreement with absolute timestamps (Theorem 5.2)",
                 2000);

  // Regime 1: constant gap (t = n/2 - 1).
  Table narrow({"n", "t", "gap", "k", "measured failure [95% CI]", "predicted"});
  for (const u32 n : {8u, 16u, 32u}) {
    const u32 t = n / 2 - 1;
    for (const u32 k : {11u, 41u, 161u, 641u}) {
      proto::TimestampParams params;
      params.scenario.n = n;
      params.scenario.t = t;
      params.k = k;
      const auto est = exp::estimate_rate(
          h.pool, h.seed ^ (n * 1000 + k), h.trials, [&](usize, Rng& rng) {
            return !proto::run_timestamp_ba(params, rng).validity(params.scenario);
          });
      const auto [lo, hi] = est.wilson95();
      narrow.add_row({std::to_string(n), std::to_string(t), std::to_string(n - 2 * t),
                      std::to_string(k), fmt_ci(est.rate(), lo, hi),
                      fmt(proto::timestamp_validity_failure_bound(n, t, k), 4)});
    }
  }
  h.emit(narrow, "Regime gap = O(1): failure decays slowly — k must grow with n (Ω(n log n)):");

  // Regime 2: linear gap (t = n/4).
  Table wide({"n", "t", "gap", "k", "measured failure [95% CI]", "predicted"});
  for (const u32 n : {8u, 16u, 32u}) {
    const u32 t = n / 4;
    for (const u32 k : {5u, 11u, 21u, 41u}) {
      proto::TimestampParams params;
      params.scenario.n = n;
      params.scenario.t = t;
      params.k = k;
      const auto est = exp::estimate_rate(
          h.pool, h.seed ^ (n * 7919 + k), h.trials, [&](usize, Rng& rng) {
            return !proto::run_timestamp_ba(params, rng).validity(params.scenario);
          });
      const auto [lo, hi] = est.wilson95();
      wide.add_row({std::to_string(n), std::to_string(t), std::to_string(n - 2 * t),
                    std::to_string(k), fmt_ci(est.rate(), lo, hi),
                    fmt(proto::timestamp_validity_failure_bound(n, t, k), 4)});
    }
  }
  h.emit(wide, "Regime gap = Ω(n): small k already gives w.h.p. validity (Ω(log n)):");
  return 0;
}
