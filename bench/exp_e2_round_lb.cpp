// E2 — Lemma 3.1: Byzantine agreement needs t+1 rounds.
//
// Part A: exhaustive adversary search on small systems — for r ≤ t some
// visibility-delay strategy splits the correct decisions; at r = t+1 the
// complete search space contains none.
// Part B: the constructive last-round attack on larger systems —
// disagreement at every r ≤ t, none at r = t+1.
#include <iostream>

#include "adversary/sync_strategies.hpp"
#include "check/round_lb.hpp"
#include "check/sync_valency.hpp"
#include "exp/harness.hpp"
#include "protocols/sync_ba.hpp"

using namespace amm;

namespace {

bool constructive_attack_splits(u32 n, u32 t, u32 rounds) {
  proto::SyncParams params;
  params.scenario.n = n;
  params.scenario.t = t;
  params.rounds_override = rounds;
  // Near-tied correct inputs: half +1, half -1 (the bivalent inputs the
  // lower-bound construction starts from).
  params.scenario.inputs.resize(n - t);
  for (u32 v = 0; v < n - t; ++v) {
    params.scenario.inputs[v] = v % 2 == 0 ? Vote::kPlus : Vote::kMinus;
  }
  adv::LastRoundSplitSync attack(Vote::kMinus, /*split=*/(n - t) / 2);
  const proto::Outcome out = proto::run_sync_ba(params, attack);
  return !out.agreement();
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E2 — t+1 round lower bound (Lemma 3.1)", 1);

  Table exhaustive({"n", "t", "rounds", "strategy space", "executions", "disagreement found"});
  struct Case {
    u32 n, t, r;
  };
  for (const Case c : {Case{3, 1, 1}, Case{3, 1, 2}, Case{4, 1, 1}, Case{4, 1, 2}, Case{4, 2, 1},
                       Case{4, 2, 2}, Case{5, 2, 1}, Case{5, 2, 2}}) {
    const check::RoundLbResult res = check::search_round_lb(c.n, c.t, c.r);
    exhaustive.add_row({std::to_string(res.n), std::to_string(res.t), std::to_string(res.rounds),
                        res.search_truncated ? "sampled" : "complete",
                        std::to_string(res.executions), res.disagreement ? "YES" : "no"});
  }
  h.emit(exhaustive, "Part A — exhaustive Byzantine strategy search:");

  Table constructive({"n", "t", "rounds", "expected", "agreement broken"});
  for (const u32 n : {6u, 9u, 12u}) {
    const u32 t = n / 3;
    for (u32 r = 1; r <= t + 1; ++r) {
      const bool split = constructive_attack_splits(n, t, r);
      constructive.add_row({std::to_string(n), std::to_string(t), std::to_string(r),
                            r <= t ? "broken" : "safe", split ? "YES" : "no"});
    }
  }
  h.emit(constructive, "Part B — constructive last-round attack (LastRoundSplitSync):");

  // Part C: Lemma 3.1 in its own vocabulary — valency of the end-of-round
  // configurations over the COMPLETE adversary strategy tree.
  Table valency({"n", "t", "rounds run", "end of round", "configs", "bivalent",
                 "disagreement reachable"});
  struct VCase {
    u32 n, t, r;
    std::vector<Vote> inputs;
  };
  const std::vector<VCase> vcases = {
      {3, 1, 1, {Vote::kPlus, Vote::kMinus}},
      {3, 1, 2, {Vote::kPlus, Vote::kMinus}},
      {4, 1, 1, {Vote::kPlus, Vote::kMinus, Vote::kMinus}},
      {4, 1, 2, {Vote::kPlus, Vote::kMinus, Vote::kMinus}},
  };
  for (const auto& c : vcases) {
    const check::SyncValencyResult res = check::analyze_sync_valency(c.n, c.t, c.r, c.inputs);
    for (const auto& rv : res.per_round) {
      valency.add_row({std::to_string(c.n), std::to_string(c.t), std::to_string(c.r),
                       std::to_string(rv.round), std::to_string(rv.configurations),
                       std::to_string(rv.bivalent), rv.disagreement_reachable ? "YES" : "no"});
    }
  }
  h.emit(valency,
         "Part C — valency classification (Lemma 3.1's own terms). With a run of\n"
         "r <= t rounds the initial configuration is bivalent AND disagreement is\n"
         "reachable (deciding that early is unsafe); with t+1 rounds every\n"
         "configuration the adversary can steer to is univalent and no completion\n"
         "splits the nodes — the extra round pins the outcome:");

  std::cout << "Paper: no deterministic Byzantine agreement in fewer than t+1 rounds;\n"
               "disagreement must appear exactly for rounds <= t.\n";
  return 0;
}
