// E7 — Lemma 5.5: a withholding adversary can inject only O(log n) extra
// Byzantine values into the first-k DAG ordering.
//
// The lemma bounds the private chain built during a quiet interval (no
// correct appends) just before the decision cut. Its executable content:
//
//  * the achievable dump is TINY relative to k and does not grow with the
//    system size (table 1 sweeps n at fixed t/n, λ) — resilience is
//    untouched, which is what Theorem 5.6 needs;
//  * the best gap any adaptive adversary could exploit grows only
//    logarithmically with the number of opportunities (table 2 sweeps k:
//    the max-over-gaps statistic follows an extreme-value log law);
//  * the dump scales with the Byzantine token share β/(1-β) (table 3).
#include <cmath>
#include <iostream>

#include "exp/harness.hpp"
#include "exp/montecarlo.hpp"
#include "protocols/dag_ba.hpp"

using namespace amm;

namespace {

struct Measured {
  double dump = 0.0;
  double omniscient = 0.0;
  double gap = 0.0;
};

Measured measure(exp::Harness& h, u32 n, u32 t, u32 k, double lambda, u64 salt) {
  proto::DagParams params;
  params.scenario.n = n;
  params.scenario.t = t;
  params.k = k;
  params.lambda = lambda;
  params.adversary = proto::DagAdversary::kWithholdOnly;

  std::mutex m;
  Measured sum;
  usize runs = 0;
  exp::collect_stats(h.pool, h.seed ^ salt, h.trials, [&](usize, Rng& rng) {
    const proto::DagResult res = proto::run_dag_continuous(params, rng);
    std::scoped_lock lock(m);
    sum.dump += static_cast<double>(res.dumped);
    sum.omniscient += static_cast<double>(res.omniscient_bound);
    sum.gap += res.final_gap / params.delta;
    ++runs;
    return static_cast<double>(res.omniscient_bound);
  });
  sum.dump /= static_cast<double>(runs);
  sum.omniscient /= static_cast<double>(runs);
  sum.gap /= static_cast<double>(runs);
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E7 — DAG withholding injects only O(log) values (Lemma 5.5)", 150);

  // Table 1: system-size sweep. The injectable value count must stay flat
  // and minuscule next to k — never linear in n.
  Table by_n({"n", "t", "k", "mean dump", "best-gap bound", "bound / k"});
  for (const u32 n : {8u, 16u, 32u, 64u, 128u}) {
    const Measured m = measure(h, n, n / 4, 201, 1.0, n);
    by_n.add_row({std::to_string(n), std::to_string(n / 4), "201", fmt(m.dump, 2),
                  fmt(m.omniscient, 2), fmt(m.omniscient / 201.0, 4)});
  }
  h.emit(by_n,
         "Sweep n at t/n = 1/4, lambda = 1, k = 201 — the injectable count is O(1)\n"
         "per gap and never scales with the system (resilience unaffected):");

  // Table 2: opportunity sweep. The adaptive adversary's best gap over the
  // run grows like the log of the number of gaps (~k).
  Table by_k({"k", "best-gap bound", "bound / log2(k)"});
  std::vector<double> log_ks, bounds;
  for (const u32 k : {51u, 101u, 201u, 401u, 801u, 1601u}) {
    const Measured m = measure(h, 16, 4, k, 1.0, 7000 + k);
    by_k.add_row({std::to_string(k), fmt(m.omniscient, 2),
                  fmt(m.omniscient / std::log2(static_cast<double>(k)), 3)});
    log_ks.push_back(std::log2(static_cast<double>(k)));
    bounds.push_back(m.omniscient);
  }
  const LinearFit log_fit = fit_linear(log_ks, bounds);
  h.emit(by_k, "Sweep k at n = 16, t = 4, lambda = 1 — extreme-value growth of the best gap:");
  std::cout << "fit: bound ~ " << fmt(log_fit.intercept, 2) << " + " << fmt(log_fit.slope, 3)
            << " * log2(k), r^2 = " << fmt(log_fit.r_squared, 3)
            << "  (logarithmic, as the lemma's tail bound predicts)\n\n";

  // Table 3: Byzantine-share sweep — the per-gap token ratio t/(n-t).
  Table by_t({"t/n", "t/(n-t)", "mean dump", "best-gap bound"});
  for (const u32 t : {2u, 4u, 6u, 8u, 10u}) {
    const Measured m = measure(h, 24, t, 201, 1.0, 9000 + t);
    by_t.add_row({fmt(t / 24.0, 3), fmt(static_cast<double>(t) / (24 - t), 3), fmt(m.dump, 2),
                  fmt(m.omniscient, 2)});
  }
  h.emit(by_t, "Sweep t at n = 24 — the dump tracks the Byzantine/correct token ratio:");
  return 0;
}
