// E10 — §4: simulating the append memory over message passing is correct
// but message-heavy.
//
// Algorithms 2–3 cost Θ(n) messages per operation, and read replies carry
// the full (ever-growing) local views — the "high message complexity cost"
// the paper trades away by abstracting to the append memory. The table
// reports messages and bytes per operation as n and history grow.
#include <iostream>
#include <memory>

#include "exp/harness.hpp"
#include "mp/abd.hpp"
#include "mp/sim_memory.hpp"

using namespace amm;

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E10 — ABD simulation of the append memory (§4)", 1);

  Table scaling({"n", "appends", "msgs/append", "msgs/read", "bytes/read", "read growth"});
  for (const u32 n : {4u, 8u, 16u, 32u}) {
    crypto::KeyRegistry keys(n, h.seed);
    mp::Network net(n, 0.05, 0.5, Rng(h.seed + n));
    std::vector<std::unique_ptr<mp::AbdNode>> nodes;
    for (u32 i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<mp::AbdNode>(NodeId{i}, net, keys));
    }

    const u32 appends = 4 * n;
    u64 append_msgs = 0;
    for (u32 a = 0; a < appends; ++a) {
      const u64 before = net.messages_sent();
      nodes[a % n]->begin_append(static_cast<i64>(a), [] {});
      net.queue().run();
      append_msgs += net.messages_sent() - before;
    }

    // First read right after one append history snapshot, second after the
    // full history: bytes must grow with the view size.
    u64 read_msgs = 0, read_bytes = 0;
    {
      const u64 m0 = net.messages_sent(), b0 = net.bytes_sent();
      nodes[0]->begin_read([](const std::vector<mp::SignedAppend>&) {});
      net.queue().run();
      read_msgs = net.messages_sent() - m0;
      read_bytes = net.bytes_sent() - b0;
    }
    // Early-history baseline read, measured on a fresh cluster with n appends.
    u64 early_bytes = 0;
    {
      crypto::KeyRegistry keys2(n, h.seed + 1);
      mp::Network net2(n, 0.05, 0.5, Rng(h.seed + n + 1));
      std::vector<std::unique_ptr<mp::AbdNode>> nodes2;
      for (u32 i = 0; i < n; ++i) {
        nodes2.push_back(std::make_unique<mp::AbdNode>(NodeId{i}, net2, keys2));
      }
      for (u32 a = 0; a < n; ++a) {
        nodes2[a % n]->begin_append(1, [] {});
        net2.queue().run();
      }
      const u64 b0 = net2.bytes_sent();
      nodes2[0]->begin_read([](const std::vector<mp::SignedAppend>&) {});
      net2.queue().run();
      early_bytes = net2.bytes_sent() - b0;
    }

    scaling.add_row({std::to_string(n), std::to_string(appends),
                     fmt(static_cast<double>(append_msgs) / appends, 1),
                     std::to_string(read_msgs), std::to_string(read_bytes),
                     fmt(static_cast<double>(read_bytes) / static_cast<double>(early_bytes), 2) +
                         "x vs 1/4 history"});
  }
  h.emit(scaling,
         "Each append costs 2n messages (broadcast + acks); each read costs 2n\n"
         "messages whose reply bytes grow linearly with history — the overhead the\n"
         "append memory model abstracts away:");

  // Part 2: a full-information round protocol (the communication pattern of
  // Algorithm 1) executed over the simulated memory. Messages stay at 4n²
  // per round; the bytes of round r grow with the whole history — the
  // "exponential information exchange" cost of simulating the abstraction.
  Table rounds_table({"n", "round", "messages", "bytes", "bytes vs round 1"});
  for (const u32 n : {6u, 12u}) {
    mp::SimulatedAppendMemory memory(n, 0.05, 0.5, h.seed + n);
    const auto costs = mp::run_full_information_rounds(memory, 5);
    for (usize r = 0; r < costs.size(); ++r) {
      rounds_table.add_row({std::to_string(n), std::to_string(r + 1),
                            std::to_string(costs[r].messages), std::to_string(costs[r].bytes),
                            fmt(static_cast<double>(costs[r].bytes) /
                                    static_cast<double>(costs[0].bytes),
                                2) + "x"});
    }
  }
  h.emit(rounds_table,
         "Full-information rounds (Algorithm 1's pattern) over message passing —\n"
         "per-round bytes grow with the entire history:");
  return 0;
}
