// E10 — §4: simulating the append memory over message passing is correct
// but message-heavy — and how far frontier reads + pipelining push the
// wall back.
//
// Parts 1–2 run the *legacy* configuration (full-view reads, one append in
// flight — Algorithms 2–3 verbatim): Θ(n) messages per operation, read
// replies carrying the full ever-growing views. That is the "high message
// complexity cost" the paper trades away by abstracting to the append
// memory, and it stays pinned here as the reference.
//
// Parts 3–4 measure the optimised wire (DESIGN.md §9): steady-state read
// bytes with frontier deltas vs the full-view baseline at --appends
// (default 10⁴) records of history, and append completion sim-time with
// the bounded pipeline vs lock-step appends.
#include <iostream>
#include <memory>

#include "exp/harness.hpp"
#include "mp/abd.hpp"
#include "mp/sim_memory.hpp"

using namespace amm;

namespace {

struct Cluster {
  crypto::KeyRegistry keys;
  mp::Network net;
  std::vector<std::unique_ptr<mp::AbdNode>> nodes;

  Cluster(u32 n, u64 seed, mp::AbdConfig config)
      : keys(n, seed), net(n, 0.05, 0.5, Rng(seed + n)) {
    for (u32 i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<mp::AbdNode>(NodeId{i}, net, keys, config));
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E10 — ABD simulation of the append memory (§4)", 1);
  const u32 big_history = static_cast<u32>(h.args.get_int("appends", 10000));

  const mp::AbdConfig legacy{.delta_reads = false, .max_pipeline = 1};

  Table scaling({"n", "appends", "msgs/append", "msgs/read", "read bytes [B]", "growth"});
  for (const u32 n : {4u, 8u, 16u, 32u}) {
    Cluster c(n, h.seed, legacy);

    const u32 appends = 4 * n;
    u64 append_msgs = 0;
    for (u32 a = 0; a < appends; ++a) {
      const u64 before = c.net.messages_sent();
      c.nodes[a % n]->begin_append(static_cast<i64>(a), [] {});
      c.net.queue().run();
      append_msgs += c.net.messages_sent() - before;
    }

    // First read right after one append history snapshot, second after the
    // full history: bytes must grow with the view size.
    u64 read_msgs = 0, read_bytes = 0;
    {
      const u64 m0 = c.net.messages_sent(), b0 = c.net.bytes_sent();
      c.nodes[0]->begin_read([](const std::vector<mp::SignedAppend>&) {});
      c.net.queue().run();
      read_msgs = c.net.messages_sent() - m0;
      read_bytes = c.net.bytes_sent() - b0;
    }
    // Early-history baseline read, measured on a fresh cluster with n appends.
    u64 early_bytes = 0;
    {
      Cluster c2(n, h.seed + 1, legacy);
      for (u32 a = 0; a < n; ++a) {
        c2.nodes[a % n]->begin_append(1, [] {});
        c2.net.queue().run();
      }
      const u64 b0 = c2.net.bytes_sent();
      c2.nodes[0]->begin_read([](const std::vector<mp::SignedAppend>&) {});
      c2.net.queue().run();
      early_bytes = c2.net.bytes_sent() - b0;
    }

    scaling.add_row({std::to_string(n), std::to_string(appends),
                     fmt(static_cast<double>(append_msgs) / appends, 1),
                     std::to_string(read_msgs), std::to_string(read_bytes),
                     fmt(static_cast<double>(read_bytes) / static_cast<double>(early_bytes), 2) +
                         "x vs 1/4 history"});
  }
  h.emit(scaling,
         "Legacy wire (Algorithms 2-3 verbatim): each append costs 2n messages\n"
         "(broadcast + acks); each read costs 2n messages whose reply bytes grow\n"
         "linearly with history — the overhead the append memory model abstracts\n"
         "away:");

  // Part 2: a full-information round protocol (the communication pattern of
  // Algorithm 1) executed over the simulated memory. Messages stay at 4n²
  // per round; the bytes of round r grow with the whole history — the
  // "exponential information exchange" cost of simulating the abstraction.
  Table rounds_table({"n", "round", "messages", "bytes [B]", "growth"});
  for (const u32 n : {6u, 12u}) {
    mp::SimulatedAppendMemory memory(n, 0.05, 0.5, h.seed + n, legacy);
    const auto costs = mp::run_full_information_rounds(memory, 5);
    for (usize r = 0; r < costs.size(); ++r) {
      rounds_table.add_row({std::to_string(n), std::to_string(r + 1),
                            std::to_string(costs[r].messages), std::to_string(costs[r].bytes),
                            fmt(static_cast<double>(costs[r].bytes) /
                                    static_cast<double>(costs[0].bytes),
                                2) + "x"});
    }
  }
  h.emit(rounds_table,
         "Full-information rounds (Algorithm 1's pattern) over the legacy wire —\n"
         "per-round bytes grow with the entire history:");

  // Part 3: steady-state read cost at large history — frontier deltas vs
  // the full-view baseline. Both clusters hold the same `big_history`
  // records; the delta reader's first read establishes its watermarks (and
  // is itself near-empty here, because broadcast appends already filled
  // every view), after which a read moves O(n·Δ) bytes instead of O(n·k).
  Table steady({"n", "history", "full read [B]", "delta read [B]", "reduction"});
  for (const u32 n : {4u, 8u}) {
    u64 full_bytes = 0, delta_bytes = 0;
    for (const bool delta : {false, true}) {
      mp::AbdConfig config;
      config.delta_reads = delta;  // responder code is mode-independent
      Cluster c(n, h.seed + n, config);
      for (u32 a = 0; a < big_history; ++a) {
        c.nodes[a % n]->begin_append(static_cast<i64>(a), [] {});
      }
      c.net.queue().run();  // pipeline drains the whole backlog
      // Warm-up read (sets the delta reader's watermarks), then measure.
      c.nodes[0]->begin_read([](const std::vector<mp::SignedAppend>&) {});
      c.net.queue().run();
      const u64 b0 = c.net.bytes_sent();
      c.nodes[0]->begin_read([](const std::vector<mp::SignedAppend>&) {});
      c.net.queue().run();
      (delta ? delta_bytes : full_bytes) = c.net.bytes_sent() - b0;
    }
    steady.add_row({std::to_string(n), std::to_string(big_history),
                    std::to_string(full_bytes), std::to_string(delta_bytes),
                    fmt(static_cast<double>(full_bytes) / static_cast<double>(delta_bytes), 1) +
                        "x"});
  }
  h.emit(steady,
         "Steady-state read at large history: frontier (delta) reads ship only\n"
         "records above the reader's per-author watermarks — wire volume is O(n·Δ)\n"
         "instead of O(n·k):");

  // Part 4: append completion time — lock-step (one outstanding append,
  // the legacy discipline) vs the bounded in-flight pipeline. Sim-time is
  // deterministic for a fixed seed, so the speedup is a stable metric.
  Table pipe({"n", "appends", "window", "sequential [s]", "pipelined [s]", "speedup"});
  for (const u32 n : {4u, 8u}) {
    const u32 appends = 64 * n;
    double seq_time = 0.0, pipe_time = 0.0;
    for (const bool pipelined : {false, true}) {
      mp::AbdConfig config;
      config.delta_reads = true;
      config.max_pipeline = pipelined ? 32 : 1;
      Cluster c(n, h.seed + 2 * n, config);
      const SimTime t0 = c.net.queue().now();
      if (pipelined) {
        for (u32 a = 0; a < appends; ++a) {
          c.nodes[a % n]->begin_append(static_cast<i64>(a), [] {});
        }
        c.net.queue().run();
      } else {
        for (u32 a = 0; a < appends; ++a) {
          c.nodes[a % n]->begin_append(static_cast<i64>(a), [] {});
          c.net.queue().run();  // lock-step: wait out each quorum
        }
      }
      (pipelined ? pipe_time : seq_time) = c.net.queue().now() - t0;
    }
    pipe.add_row({std::to_string(n), std::to_string(appends), "32", fmt(seq_time, 2),
                  fmt(pipe_time, 2), fmt(seq_time / pipe_time, 1) + "x"});
  }
  h.emit(pipe,
         "Append pipelining: up to 32 appends in flight per node overlap their\n"
         "quorum round-trips — completion sim-time drops accordingly:");
  return 0;
}
