// E12 — the backbone properties underneath §5.2 (Garay et al. [9],
// Ren [21]): chain growth, chain quality and common prefix, measured on
// the append-memory chain protocol.
//
// The mechanism behind Theorems 5.3/5.4 becomes visible directly:
//  * the rushing adversary attacks CHAIN QUALITY — the Byzantine share of
//    the longest chain grows past its token share as λ·t grows;
//  * CHAIN GROWTH stays pinned near one useful block per Δ (only the
//    first correct append of an interval survives), so honest concurrency
//    shows up as wasted forks growing with λ(n−t);
//  * the honest COMMON PREFIX, by contrast, is robust — Δ-separated views
//    disagree on ~1-2 blocks at every rate; consistency damage requires
//    the Byzantine tie-breaking of E5/E6.
#include <iostream>

#include "chain/backbone.hpp"
#include "exp/harness.hpp"
#include "exp/montecarlo.hpp"
#include "protocols/chain_ba.hpp"
#include "sched/poisson.hpp"

using namespace amm;

namespace {

/// Drives an honest chain against the raw memory and measures the true
/// k-common-prefix statistic: how far the canonical chains of a live view
/// and a Δ-stale view diverge, sampled along the run.
double measure_common_prefix(u32 n, double lambda, u64 seed) {
  am::AppendMemory memory(n);
  sched::TokenAuthority authority(n, lambda, 1.0, Rng(seed));
  Rng tie_rng(seed + 1);
  double divergence_sum = 0.0;
  u32 samples = 0;
  for (int i = 0; i < 300; ++i) {
    const sched::Token token = authority.next();
    const chain::BlockGraph stale(memory.read_at(token.time - 1.0));
    std::vector<am::MsgId> refs;
    if (stale.block_count() > 0) {
      refs.push_back(chain::choose_longest_tip(stale, chain::TieBreak::kRandomized, tie_rng));
    }
    memory.append(token.holder, Vote::kPlus, 0, std::move(refs), token.time);
    if (i % 50 == 49) {
      const chain::BlockGraph live(memory.read());
      const chain::BlockGraph lagged(memory.read_at(token.time - 1.0));
      divergence_sum += chain::common_prefix_divergence(live, lagged);
      ++samples;
    }
  }
  return divergence_sum / samples;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E12 — backbone properties of the chain (§5.2 mechanism)", 100);

  const u32 n = 20;
  const u32 k = 81;

  Table table({"lambda", "t", "lambda*(n-t)", "lambda*t", "growth/delta", "chain quality (byz)",
               "token share t/n", "prefix divergence"});
  for (const double lambda : {0.1, 0.25, 0.5, 1.0}) {
    for (const u32 t : {0u, 2u, 5u}) {
      proto::ChainParams params;
      params.scenario.n = n;
      params.scenario.t = t;
      params.k = k;
      params.lambda = lambda;
      params.adversary = proto::ChainAdversary::kRushExtend;

      std::mutex m;
      double growth_sum = 0.0, quality_sum = 0.0, divergence_sum = 0.0;
      usize runs = 0;
      exp::collect_stats(
          h.pool, h.seed ^ (static_cast<u64>(lambda * 1000) * 17 + t), h.trials,
          [&](usize, Rng& rng) {
            const proto::Outcome out = proto::run_chain_slotted(params, rng);
            if (!out.terminated) return 0.0;
            // growth: chain length k over elapsed slots; quality: byz share
            // of the decided chain; divergence: how far two views separated
            // by one Δ of staleness disagree — approximated by the wasted
            // (forked) appends per depth unit.
            const double growth =
                static_cast<double>(params.k) / static_cast<double>(out.rounds);
            const double quality = static_cast<double>(out.byz_in_decision_set) /
                                   static_cast<double>(out.decision_set_size);
            const double waste =
                static_cast<double>(out.total_appends) / static_cast<double>(params.k) - 1.0;
            std::scoped_lock lock(m);
            growth_sum += growth;
            quality_sum += quality;
            divergence_sum += waste;
            ++runs;
            return growth;
          });
      table.add_row({fmt(lambda, 2), std::to_string(t),
                     fmt(lambda * (n - t), 2), fmt(lambda * t, 2),
                     fmt(growth_sum / static_cast<double>(runs), 3),
                     fmt(quality_sum / static_cast<double>(runs), 3),
                     fmt(static_cast<double>(t) / n, 3),
                     fmt(divergence_sum / static_cast<double>(runs), 2)});
    }
  }
  h.emit(table,
         "growth saturates near min(1, lambda*(n-t)) useful blocks per slot; the\n"
         "Byzantine chain-quality share exceeds the token share once the rusher\n"
         "outruns the single useful correct append per slot; forked (wasted)\n"
         "appends per chain block grow with lambda*(n-t):");

  // Part 2: the k-common-prefix property directly — canonical chains of a
  // live view vs a Δ-stale view of the same honest memory.
  Table prefix({"lambda*n", "mean common-prefix divergence (blocks)"});
  for (const double lambda : {0.1, 0.25, 0.5, 1.0, 2.0}) {
    double sum = 0.0;
    const int reps = 20;
    for (u64 seed = 0; seed < reps; ++seed) {
      sum += measure_common_prefix(n, lambda, h.seed + seed);
    }
    prefix.add_row({fmt(lambda * n, 1), fmt(sum / reps, 2)});
  }
  h.emit(prefix,
         "Honest nodes only: two views separated by one Δ disagree on a short\n"
         "suffix (~1-2 blocks) REGARDLESS of the rate — chain depth only grows ~1\n"
         "useful block per Δ, so honest concurrency wastes appends (part 1) but\n"
         "barely moves the common prefix. Turning concurrency into consistency\n"
         "damage takes Byzantine tie-breaking — exactly E5/E6's attacks:");
  return 0;
}
