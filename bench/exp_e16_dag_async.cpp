// E16 — the closing remark of §5.3: "temporarily asynchronous nodes would
// reduce the resilience of Byzantine agreement on the DAG."
//
// Nakamoto consistency on the DAG survives temporary asynchrony [22], but
// Byzantine *agreement* has a fixed decision cut — if correct nodes stall
// (unbounded token→append gaps) during the final stretch, the withholding
// adversary's quiet interval grows with the stall and its private chain
// claims the remaining cut positions. The table sweeps the asynchrony
// duration: the dump grows from Lemma 5.5's O(log) values to the whole
// banking window, and validity at a share the synchronous DAG tolerates
// comfortably (t/n = 0.4) collapses.
#include <iostream>

#include "exp/harness.hpp"
#include "exp/montecarlo.hpp"
#include "protocols/dag_ba.hpp"

using namespace amm;

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E16 — temporary asynchrony vs DAG agreement (§5.3 remark)", 200);

  const u32 n = 20;
  const u32 t = 8;  // t/n = 0.4: safely inside the synchronous DAG's bound
  const u32 k = 101;

  Table table({"async delay x delta", "validity [95% CI]", "mean dump", "mean final gap/delta"});
  for (const double delay : {0.0, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    proto::DagParams params;
    params.scenario.n = n;
    params.scenario.t = t;
    params.k = k;
    params.lambda = 1.0;
    params.adversary = proto::DagAdversary::kRateAndWithhold;
    params.async_delay = delay;
    params.async_window = 51;  // the final half of the cut is asynchronous

    std::mutex m;
    double dump_sum = 0.0, gap_sum = 0.0;
    usize runs = 0;
    const auto est = exp::estimate_rate(
        h.pool, h.seed ^ static_cast<u64>(delay * 10), h.trials, [&](usize, Rng& rng) {
          const proto::DagResult res = proto::run_dag_continuous(params, rng);
          {
            std::scoped_lock lock(m);
            dump_sum += static_cast<double>(res.dumped);
            gap_sum += res.final_gap;
            ++runs;
          }
          return res.outcome.terminated && res.outcome.validity(params.scenario);
        });
    const auto [lo, hi] = est.wilson95();
    table.add_row({fmt(delay, 1), fmt_ci(est.rate(), lo, hi),
                   fmt(dump_sum / static_cast<double>(runs), 2),
                   fmt(gap_sum / static_cast<double>(runs), 2)});
  }
  h.emit(table,
         "n=20, t=8 (t/n = 0.4), lambda=1, k=101. Synchronous (delay 0): the dump\n"
         "is a handful of values and validity holds. As correct nodes stall near\n"
         "the cut, the adversary's quiet interval and private chain grow with the\n"
         "stall — resilience degrades exactly as the paper's closing remark says:");
  return 0;
}
