// E3 — Theorem 3.2: Algorithm 1 solves Byzantine agreement in the append
// memory for t < n/2 within t+1 rounds (O(tΔ) time).
//
// Sweep (n, t) across the n/2 boundary under every implemented adversary;
// agreement and validity must hold exactly for 2t < n.
#include <algorithm>
#include <iostream>

#include "adversary/sync_strategies.hpp"
#include "exp/harness.hpp"
#include "protocols/sync_ba.hpp"

using namespace amm;

namespace {

struct NamedAdversary {
  std::string name;
  std::function<std::unique_ptr<proto::SyncAdversary>(u64 seed)> make;
};

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E3 — synchronous Byzantine agreement (Theorem 3.2)", 20);

  const std::vector<NamedAdversary> adversaries = {
      {"silent", [](u64) { return std::make_unique<adv::SilentSync>(); }},
      {"opposite-voter",
       [](u64) { return std::make_unique<adv::OppositeVoterSync>(Vote::kPlus); }},
      {"split-vision",
       [](u64 seed) { return std::make_unique<adv::SplitVisionSync>(Vote::kPlus, Rng(seed)); }},
      {"last-round-split",
       [](u64) { return std::make_unique<adv::LastRoundSplitSync>(Vote::kPlus, 2); }},
  };

  Table table({"n", "t", "t<n/2", "adversary", "rounds", "agreement", "validity"});
  for (const u32 n : {5u, 9u, 17u}) {
    std::vector<u32> ts{n / 4, (n - 1) / 2, n / 2 + 1, (2 * n) / 3};
    ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
    for (const u32 t : ts) {
      if (t >= n) continue;
      for (const auto& adversary : adversaries) {
        usize agree = 0, valid = 0;
        const usize reps = adversary.name == "split-vision" ? h.trials : 1;
        u64 rounds = 0;
        for (usize rep = 0; rep < reps; ++rep) {
          proto::SyncParams params;
          params.scenario.n = n;
          params.scenario.t = t;
          // Correct input -1, Byzantine votes +1: the sign convention breaks
          // ties toward +1, so validity fails exactly when the Byzantine
          // votes reach half — no tie artifact at 2t = n.
          params.scenario.correct_input = Vote::kMinus;
          auto a = adversary.make(h.seed + rep);
          const proto::Outcome out = proto::run_sync_ba(params, *a);
          rounds = out.rounds;
          agree += out.agreement();
          valid += out.validity(params.scenario);
        }
        table.add_row({std::to_string(n), std::to_string(t), 2 * t < n ? "yes" : "no",
                       adversary.name, std::to_string(rounds),
                       fmt(static_cast<double>(agree) / static_cast<double>(reps), 2),
                       fmt(static_cast<double>(valid) / static_cast<double>(reps), 2)});
      }
    }
  }
  h.emit(table,
         "Paper: agreement+validity for t < n/2 in t+1 rounds. Past n/2 validity\n"
         "collapses under EVERY strategy — even silence: with n-t <= t the correct\n"
         "nodes alone cannot assemble the t+1 distinct authors an acceptance chain\n"
         "needs, so no value is ever accepted (the algorithm's bound is tight):");
  return 0;
}
