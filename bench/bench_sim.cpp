// Micro-benchmarks for the simulation substrates: event queue throughput,
// token generation, and end-to-end protocol trial rates (the quantity that
// bounds every Monte-Carlo experiment).
#include <benchmark/benchmark.h>

#include "protocols/chain_ba.hpp"
#include "protocols/dag_ba.hpp"
#include "protocols/timestamp_ba.hpp"
#include "sched/event_queue.hpp"
#include "sched/poisson.hpp"

namespace {

using namespace amm;

void BM_EventQueueChurn(benchmark::State& state) {
  sched::EventQueue q;
  SimTime t = 0.0;
  // Self-perpetuating event: measures schedule+dispatch cost.
  for (auto _ : state) {
    t += 1.0;
    q.schedule_at(t, [] {});
    q.run(1);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_EventQueueChurn);

void BM_TokenAuthority(benchmark::State& state) {
  sched::TokenAuthority auth(static_cast<u32>(state.range(0)), 1.0, 1.0, Rng(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(auth.next());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_TokenAuthority)->Arg(16)->Arg(1024);

void BM_TimestampTrial(benchmark::State& state) {
  proto::TimestampParams params;
  params.scenario.n = 20;
  params.scenario.t = 6;
  params.k = 101;
  u64 seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::run_timestamp_ba(params, Rng(seed++)));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_TimestampTrial);

void BM_ChainSlottedTrial(benchmark::State& state) {
  proto::ChainParams params;
  params.scenario.n = 20;
  params.scenario.t = 4;
  params.k = 61;
  params.lambda = 0.5;
  params.adversary = proto::ChainAdversary::kRushExtend;
  u64 seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::run_chain_slotted(params, Rng(seed++)));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_ChainSlottedTrial);

void BM_ChainContinuousTrial(benchmark::State& state) {
  proto::ChainParams params;
  params.scenario.n = 20;
  params.scenario.t = 4;
  params.k = 61;
  params.lambda = 0.5;
  params.adversary = proto::ChainAdversary::kRushExtend;
  u64 seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::run_chain_continuous(params, Rng(seed++)));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_ChainContinuousTrial);

void BM_DagTrial(benchmark::State& state) {
  proto::DagParams params;
  params.scenario.n = 20;
  params.scenario.t = 5;
  params.k = 101;
  params.lambda = 1.0;
  params.adversary = proto::DagAdversary::kRateAndWithhold;
  u64 seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::run_dag_continuous(params, Rng(seed++)));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_DagTrial);

void BM_DagTrialFullOrdering(benchmark::State& state) {
  proto::DagParams params;
  params.scenario.n = 20;
  params.scenario.t = 5;
  params.k = 101;
  params.lambda = 1.0;
  params.full_ordering = true;
  u64 seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::run_dag_continuous(params, Rng(seed++)));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_DagTrialFullOrdering);

}  // namespace
