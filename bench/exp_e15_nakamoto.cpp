// E15 — Nakamoto confirmation on the append memory (the §1.2/§5.2
// literature context: consistency without consensus).
//
// Double-spend race: reversal probability vs confirmation depth for
// several attacker power shares, next to Nakamoto's closed-form
// overtaking bound (q/p)^z. The measured decay must be exponential in the
// depth with the predicted base, and the attacker must win always at
// q >= 1/2 — the "honest majority" condition the paper's §5 results rest
// on, observed from below.
#include <iostream>

#include "exp/harness.hpp"
#include "exp/montecarlo.hpp"
#include "protocols/nakamoto.hpp"

using namespace amm;

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E15 — Nakamoto double-spend race (§1.2/§5.2 context)", 2000);

  const u32 n = 20;

  Table table({"q = t/n", "depth", "measured reversal [95% CI]", "naive (q/p)^(z+1)", "race closed form"});
  for (const u32 t : {2u, 5u, 8u, 10u}) {
    const double q = static_cast<double>(t) / n;
    for (const u32 depth : {1u, 2u, 4u, 6u, 8u}) {
      proto::NakamotoParams params;
      params.scenario.n = n;
      params.scenario.t = t;
      params.confirmation_depth = depth;
      const auto est = exp::estimate_rate(
          h.pool, h.seed ^ (t * 100 + depth), h.trials, [&](usize, Rng& rng) {
            const proto::NakamotoResult res = proto::run_double_spend_race(params, rng);
            return res.terminated && res.reversed;
          });
      const auto [lo, hi] = est.wilson95();
      table.add_row({fmt(q, 2), std::to_string(depth), fmt_ci(est.rate(), lo, hi),
                     fmt(proto::nakamoto_overtake_bound(q, depth + 1), 4),
                     fmt(proto::nakamoto_reversal_probability(q, depth), 4)});
    }
  }
  h.emit(table,
         "Reversal probability decays exponentially in the confirmation depth with\n"
         "base q/p and must match the race's closed form (finite give-up deficit\n"
         "keeps q = 1/2 at ~0.92 instead of the asymptotic 1.0 — the honest-\n"
         "majority condition beneath every Section 5 result):");
  return 0;
}
