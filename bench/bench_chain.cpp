// Micro-benchmarks for block-graph analytics: graph construction, GHOST /
// longest-chain pivot selection and full DAG linearization on synthetic
// DAGs of realistic shapes.
#include <benchmark/benchmark.h>

#include "chain/rules.hpp"
#include "support/rng.hpp"

namespace {

using namespace amm;

/// Builds a DAG of `blocks` messages over `nodes` registers where each
/// block references between 1 and `fanin` earlier blocks.
am::AppendMemory build_dag(u32 nodes, u32 blocks, u32 fanin, u64 seed) {
  am::AppendMemory memory(nodes);
  Rng rng(seed);
  std::vector<am::MsgId> all;
  for (u32 i = 0; i < blocks; ++i) {
    std::vector<am::MsgId> refs;
    if (!all.empty()) {
      const u32 want = 1 + static_cast<u32>(rng.uniform_below(fanin));
      for (u32 r = 0; r < want; ++r) {
        const am::MsgId pick = all[all.size() - 1 - rng.uniform_below(std::min<usize>(all.size(), 8))];
        if (std::find(refs.begin(), refs.end(), pick) == refs.end()) refs.push_back(pick);
      }
    }
    all.push_back(memory.append(NodeId{static_cast<u32>(rng.uniform_below(nodes))}, Vote::kPlus,
                                0, std::move(refs), static_cast<SimTime>(i)));
  }
  return memory;
}

void BM_BlockGraphBuild(benchmark::State& state) {
  const auto blocks = static_cast<u32>(state.range(0));
  const am::AppendMemory memory = build_dag(16, blocks, 3, 1);
  const am::MemoryView view = memory.read();
  for (auto _ : state) {
    chain::BlockGraph graph(view);
    benchmark::DoNotOptimize(graph.max_depth());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * blocks);
}
BENCHMARK(BM_BlockGraphBuild)->Arg(1000)->Arg(10000);

void BM_SelectPivotGhost(benchmark::State& state) {
  const am::AppendMemory memory = build_dag(16, 10'000, 3, 2);
  const chain::BlockGraph graph(memory.read());
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain::select_pivot(graph, chain::PivotRule::kGhost));
  }
}
BENCHMARK(BM_SelectPivotGhost);

void BM_SelectPivotLongest(benchmark::State& state) {
  const am::AppendMemory memory = build_dag(16, 10'000, 3, 2);
  const chain::BlockGraph graph(memory.read());
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain::select_pivot(graph, chain::PivotRule::kLongestChain));
  }
}
BENCHMARK(BM_SelectPivotLongest);

void BM_LinearizeDag(benchmark::State& state) {
  const auto blocks = static_cast<u32>(state.range(0));
  const am::AppendMemory memory = build_dag(16, blocks, 3, 3);
  const chain::BlockGraph graph(memory.read());
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain::linearize_dag(graph, chain::PivotRule::kGhost));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * blocks);
}
BENCHMARK(BM_LinearizeDag)->Arg(1000)->Arg(10000);

void BM_ChainToDeepTip(benchmark::State& state) {
  // Pure chain of 50k blocks: tip-to-root walk.
  am::AppendMemory memory(4);
  am::MsgId prev = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 0.0);
  for (u32 i = 1; i < 50'000; ++i) {
    prev = memory.append(NodeId{i % 4}, Vote::kPlus, 0, {prev}, static_cast<SimTime>(i));
  }
  const chain::BlockGraph graph(memory.read());
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.chain_to(prev));
  }
}
BENCHMARK(BM_ChainToDeepTip);

}  // namespace
