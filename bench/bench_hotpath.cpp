// Hot-path benchmark for the incremental append-memory machinery: graph
// growth (extend vs from-scratch rebuild), append-time ordering (k-way
// merge vs full sort vs incremental cursor) and the decision rules on the
// final graph. Emits harness tables; `--json` output is aggregated into the
// pinned BENCH_sim.json baseline by tools/collect_bench.py and compared by
// tools/bench_diff.py.
//
// Extra knobs (all optional):
//   --max-history N   cap per-config history length   (default 100000)
//   --rounds R        observation rounds per trial    (default 64)
#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "am/memory.hpp"
#include "am/order.hpp"
#include "chain/rules.hpp"
#include "exp/harness.hpp"
#include "mp/abd.hpp"
#include "mp/network.hpp"
#include "support/rng.hpp"

namespace {

using namespace amm;

/// Defeats dead-code elimination without google-benchmark.
volatile u64 g_sink = 0;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall time of `fn`, in milliseconds.
template <typename Fn>
double time_ms(int reps, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    fn();
    best = std::min(best, now_seconds() - t0);
  }
  return best * 1e3;
}

/// Random DAG history: each append references up to 3 recent blocks (the
/// shape the dag_ba protocol produces), timestamps strictly increasing.
am::AppendMemory build_history(u32 n, u32 history, u64 seed) {
  am::AppendMemory memory(n);
  Rng rng(seed);
  std::vector<am::MsgId> all;
  all.reserve(history);
  for (u32 i = 0; i < history; ++i) {
    std::vector<am::MsgId> refs;
    if (!all.empty()) {
      const u32 want = 1 + static_cast<u32>(rng.uniform_below(3));
      for (u32 r = 0; r < want; ++r) {
        const am::MsgId pick =
            all[all.size() - 1 - rng.uniform_below(std::min<usize>(all.size(), 8))];
        if (std::find(refs.begin(), refs.end(), pick) == refs.end()) refs.push_back(pick);
      }
    }
    all.push_back(memory.append(NodeId{static_cast<u32>(rng.uniform_below(n))}, Vote::kPlus,
                                /*payload=*/0, std::move(refs), static_cast<SimTime>(i + 1)));
  }
  return memory;
}

/// The growing views a protocol observes: `rounds` evenly spaced prefixes
/// of the history, ending at the full view.
std::vector<am::MemoryView> observation_views(const am::AppendMemory& memory, u32 history,
                                              u32 rounds) {
  std::vector<am::MemoryView> views;
  views.reserve(rounds);
  for (u32 r = 1; r <= rounds; ++r) {
    const SimTime horizon =
        static_cast<SimTime>(history) * static_cast<double>(r) / static_cast<double>(rounds) +
        0.5;
    views.push_back(memory.read_at(horizon));
  }
  views.back() = memory.read();
  return views;
}

int reps_for(u32 history) { return history <= 2000 ? 5 : history <= 20000 ? 3 : 1; }

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "Hot paths — incremental graph, ordering, decision rules", 1);
  const u32 max_history = static_cast<u32>(h.args.get_int("max-history", 100000));
  const u32 rounds = static_cast<u32>(h.args.get_int("rounds", 64));

  const std::vector<u32> ns = {8, 32, 128};
  std::vector<u32> histories;
  for (const u32 cand : {1000u, 10000u, 100000u}) {
    if (cand <= max_history) histories.push_back(cand);
  }
  if (histories.empty()) histories.push_back(max_history);

  // --- Graph growth: carry-and-extend vs rebuild-per-round -------------
  Table growth({"n", "history", "rounds", "extend [ms]", "rebuild [ms]", "speedup"});
  for (const u32 n : ns) {
    for (const u32 history : histories) {
      const am::AppendMemory memory = build_history(n, history, h.seed);
      const std::vector<am::MemoryView> views = observation_views(memory, history, rounds);
      const int reps = reps_for(history);

      const double extend_ms = time_ms(reps, [&] {
        chain::BlockGraph graph;
        for (const am::MemoryView& v : views) {
          graph.extend(v);
          g_sink = g_sink + graph.max_depth();
        }
      });
      const double rebuild_ms = time_ms(reps, [&] {
        for (const am::MemoryView& v : views) {
          const chain::BlockGraph graph(v);
          g_sink = g_sink + graph.max_depth();
        }
      });
      growth.add_row({std::to_string(n), std::to_string(history), std::to_string(rounds),
                      fmt(extend_ms, 3), fmt(rebuild_ms, 3), fmt(rebuild_ms / extend_ms, 2)});
    }
  }
  h.emit(growth, "Graph growth over " + std::to_string(rounds) +
                     " observation rounds: incremental extend vs from-scratch rebuild:");

  // --- Append-time ordering: merge vs sort vs incremental cursor -------
  Table ordering({"n", "history", "merge [ms]", "sort [ms]", "cursor [ms]"});
  for (const u32 n : ns) {
    for (const u32 history : histories) {
      const am::AppendMemory memory = build_history(n, history, h.seed + 1);
      const am::MemoryView view = memory.read();
      const std::vector<am::MemoryView> views = observation_views(memory, history, rounds);
      const int reps = reps_for(history);

      const double merge_ms = time_ms(reps, [&] { g_sink = g_sink + view.by_append_time().size(); });
      // The pre-merge implementation, timed as the baseline it replaced.
      const double sort_ms = time_ms(reps, [&] {
        std::vector<am::MsgId> ids;
        ids.reserve(view.size());
        for (u32 r = 0; r < view.register_count(); ++r) {
          for (u32 s = 0; s < view.register_len(r); ++s) ids.push_back(am::MsgId{r, s});
        }
        std::stable_sort(ids.begin(), ids.end(), [&](am::MsgId a, am::MsgId b) {
          const SimTime ta = view.msg(a).appended_at;
          const SimTime tb = view.msg(b).appended_at;
          if (ta != tb) return ta < tb;
          return a < b;
        });
        g_sink = g_sink + ids.size();
      });
      // Round-r watermark = the read horizon of round r's view: everything
      // still hidden was appended at or after it.
      std::vector<SimTime> horizons;
      horizons.reserve(views.size());
      for (u32 r = 1; r <= rounds; ++r) {
        horizons.push_back(static_cast<SimTime>(history) * static_cast<double>(r) /
                           static_cast<double>(rounds) + 0.5);
      }
      const double cursor_ms = time_ms(reps, [&] {
        am::AppendOrderCursor cursor(memory);
        std::vector<am::MsgId> out;
        out.reserve(view.size());
        for (usize i = 0; i < views.size(); ++i) cursor.drain(views[i], horizons[i], out);
        cursor.finish(view, out);
        g_sink = g_sink + out.size();
      });
      ordering.add_row({std::to_string(n), std::to_string(history), fmt(merge_ms, 3),
                        fmt(sort_ms, 3), fmt(cursor_ms, 3)});
    }
  }
  h.emit(ordering,
         "Append-time ordering of the full history: k-way merge vs the old full "
         "sort vs round-by-round cursor:");

  // --- Decision rules on the final graph -------------------------------
  Table rules({"n", "history", "ghost pivot [ms]", "longest pivot [ms]", "linearize [ms]"});
  for (const u32 n : ns) {
    for (const u32 history : histories) {
      const am::AppendMemory memory = build_history(n, history, h.seed + 2);
      const chain::BlockGraph graph(memory.read());
      const int reps = reps_for(history);

      const double ghost_ms = time_ms(
          reps, [&] { g_sink = g_sink + chain::select_pivot(graph, chain::PivotRule::kGhost).size(); });
      const double longest_ms = time_ms(reps, [&] {
        g_sink = g_sink + chain::select_pivot(graph, chain::PivotRule::kLongestChain).size();
      });
      const double lin_ms = time_ms(reps, [&] {
        g_sink = g_sink + chain::linearize_dag(graph, chain::PivotRule::kGhost).size();
      });
      rules.add_row({std::to_string(n), std::to_string(history), fmt(ghost_ms, 3),
                     fmt(longest_ms, 3), fmt(lin_ms, 3)});
    }
  }
  h.emit(rules, "Decision rules on the final graph (dense per-author indexing):");

  // --- Decided-prefix compaction: resident record state vs history ------
  // mp layer over the simulated network (DESIGN.md §8). The unbounded node
  // pays one record body per appended record forever; a summary-mode node
  // folds the stable prefix into its checkpoint, so live record state is
  // the suffix behind the quantized cut — near-flat at any history. The
  // byte column is live records x the in-memory record size, so the
  // bytes/record-of-history curve falls as 1/history with compaction on.
  Table compact_mem({"mode", "n", "history", "live [records]", "resident [B]"});
  for (const bool summary : {false, true}) {
    for (const u32 history : histories) {
      const u32 cluster_n = 4;
      mp::Network net(cluster_n, 0.01, 0.1, Rng::for_stream(h.seed, summary ? 0xc1 : 0xc0));
      const crypto::KeyRegistry keys(cluster_n, h.seed);
      mp::AbdConfig cfg;
      cfg.compact.enabled = summary;
      cfg.compact.retain_records = false;
      cfg.compact.lag = 64;
      std::vector<std::unique_ptr<mp::AbdNode>> nodes;
      nodes.reserve(cluster_n);
      for (u32 i = 0; i < cluster_n; ++i) {
        nodes.push_back(std::make_unique<mp::AbdNode>(NodeId{i}, net, keys, cfg));
      }
      for (u32 k = 0; k < history; ++k) {
        nodes[k % cluster_n]->begin_append((k % 2) != 0 ? 1 : -1, [] {});
        // Drain in batches so the pipeline window, not the backlog, bounds
        // in-flight appends.
        if ((k & 31u) == 31u) net.queue().run();
      }
      net.queue().run();
      const usize live = nodes[0]->live_records();
      compact_mem.add_row({summary ? "summary" : "off", std::to_string(cluster_n),
                           std::to_string(history), std::to_string(live),
                           std::to_string(live * sizeof(mp::SignedAppend))});
    }
  }
  h.emit(compact_mem,
         "Decided-prefix compaction: live record state vs total history "
         "(summary mode folds the stable prefix into the checkpoint):");
  return 0;
}
