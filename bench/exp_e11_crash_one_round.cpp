// E11 — §3's aside: crash failures cost only ONE round in the append
// memory, because everything a node managed to append is visible to all
// correct nodes after Δ — there is no "sent to a subset before crashing"
// scenario. Byzantine failures need t+1 rounds (E2/E3).
#include <iostream>

#include "adversary/sync_strategies.hpp"
#include "exp/harness.hpp"
#include "protocols/sync_ba.hpp"

using namespace amm;

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E11 — crash agreement in one round (§3)", 1);

  Table table({"n", "t(crash)", "crash round", "rounds run", "agreement", "validity"});
  for (const u32 n : {5u, 10u, 20u}) {
    for (const u32 t : {1u, n / 3, n / 2 + 1}) {
      if (t >= n) continue;
      for (const u32 crash_round : {1u, 2u}) {
        proto::SyncParams params;
        params.scenario.n = n;
        params.scenario.t = t;
        params.scenario.correct_input = Vote::kPlus;
        params.rounds_override = 1;  // the claim: one round suffices
        adv::CrashSync crash(Vote::kPlus, crash_round);
        const proto::Outcome out = proto::run_sync_ba(params, crash);
        table.add_row({std::to_string(n), std::to_string(t), std::to_string(crash_round),
                       std::to_string(out.rounds), out.agreement() ? "yes" : "NO",
                       out.validity(params.scenario) ? "yes" : "NO"});
      }
    }
  }
  h.emit(table,
         "Crash-faulty nodes (even a majority) never endanger one-round agreement\n"
         "in the append memory — contrast with the t+1 rounds Byzantine bound (E2):");
  return 0;
}
