// E6 — Theorem 5.4: the chain's resilience depends on the access rate:
//   t/n <= 1 / (1 + λ(n - t)),  equivalently  λ·t <= 1.
//
// Sweep the Byzantine share across the predicted threshold for several
// rates under the rushing tie-breaker adversary, in both execution models
// (slotted = the paper's average-case analysis; continuous = event-driven
// ablation). Validity must collapse right where λ·t crosses 1.
#include <iostream>

#include "exp/harness.hpp"
#include "exp/montecarlo.hpp"
#include "protocols/chain_ba.hpp"

using namespace amm;

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E6 — chain resilience vs access rate (Theorem 5.4)", 400);

  const u32 n = 20;
  const u32 k = 61;

  for (const bool slotted : {true, false}) {
    Table table({"model", "lambda", "t", "t/n", "bound 1/(1+l(n-t))", "lambda*t",
                 "validity [95% CI]", "byz frac of chain"});
    for (const double lambda : {0.125, 0.25, 0.5}) {
      for (const u32 t : {1u, 2u, 4u, 6u, 8u, 9u}) {
        proto::ChainParams params;
        params.scenario.n = n;
        params.scenario.t = t;
        params.k = k;
        params.lambda = lambda;
        params.tie_break = chain::TieBreak::kRandomized;
        params.adversary = proto::ChainAdversary::kRushExtend;

        std::mutex m;
        double frac_sum = 0.0;
        usize runs = 0;
        const auto est = exp::estimate_rate(
            h.pool, h.seed ^ (static_cast<u64>(lambda * 1000) * 31 + t + (slotted ? 1 : 0)),
            h.trials, [&](usize, Rng& rng) {
              const proto::Outcome out = slotted ? proto::run_chain_slotted(params, rng)
                                                 : proto::run_chain_continuous(params, rng);
              {
                std::scoped_lock lock(m);
                if (out.terminated) {
                  frac_sum += static_cast<double>(out.byz_in_decision_set) /
                              static_cast<double>(out.decision_set_size);
                  ++runs;
                }
              }
              return out.terminated && out.validity(params.scenario);
            });
        const auto [lo, hi] = est.wilson95();
        table.add_row({slotted ? "slotted" : "continuous", fmt(lambda, 3), std::to_string(t),
                       fmt(static_cast<double>(t) / n, 3),
                       fmt(proto::chain_resilience_bound(n, t, lambda), 3),
                       fmt(lambda * t, 2), fmt_ci(est.rate(), lo, hi),
                       runs > 0 ? fmt(frac_sum / static_cast<double>(runs), 3) : "-"});
      }
    }
    h.emit(table, slotted ? "Slotted model (matches the Theorem 5.4 average-case analysis):"
                          : "Continuous-time model (ablation):");
  }
  std::cout << "Paper: validity survives while t/n is below 1/(1+lambda(n-t)) — i.e.\n"
               "lambda*t < 1 — and collapses beyond it, for every rate lambda.\n";
  return 0;
}
