// E13 — Theorem 5.1 / §2, executable: randomized memory access does not
// circumvent asynchronous impossibility.
//
// The adversarial schedule is a partition: two groups of correct nodes,
// each seeing the other's appends only after staleness·Δ (the model allows
// unbounded read→append gaps — the scheduler creates the delay, no network
// is involved). Each group decides when ITS view first shows a chain of
// length k; the run continues to global length 2k.
//
// Under synchrony (staleness ≤ 1Δ) the groups agree and the decision is
// final. Under asynchrony the groups grow leapfrogging branches: their
// decisions split (agreement broken), the decided prefix gets replaced,
// and the final decision flips — with ZERO Byzantine nodes. That is
// Theorem 5.1's content: the token process cannot substitute for
// synchrony.
#include <iostream>

#include "exp/harness.hpp"
#include "exp/montecarlo.hpp"
#include "protocols/chain_ba.hpp"

using namespace amm;

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E13 — asynchrony destroys agreement & finality (Theorem 5.1)",
                 200);

  const u32 n = 12;
  const u32 k = 41;

  Table table({"staleness x delta", "decision split [95% CI]", "flip rate",
               "mean replaced prefix (of k)"});
  for (const double staleness : {0.0, 1.0, 4.0, 16.0, 64.0}) {
    proto::ChainParams params;
    params.scenario.n = n;
    params.scenario.t = 0;  // no Byzantine nodes: pure asynchrony
    params.k = k;
    params.lambda = 0.5;
    // Knife-edge inputs by partition group: group A (even) votes +1,
    // group B (odd) votes -1 — the bivalent initial configurations of the
    // §2 impossibility argument.
    params.scenario.inputs.resize(n);
    for (u32 v = 0; v < n; ++v) params.scenario.inputs[v] = v % 2 ? Vote::kMinus : Vote::kPlus;

    std::mutex m;
    double replaced_sum = 0.0;
    usize flips = 0, runs = 0;
    const auto est = exp::estimate_rate(
        h.pool, h.seed ^ static_cast<u64>(staleness * 10), h.trials, [&](usize, Rng& rng) {
          const proto::FinalityResult res = proto::run_chain_finality(params, staleness, rng);
          {
            std::scoped_lock lock(m);
            if (res.terminated) {
              replaced_sum += static_cast<double>(res.prefix_divergence);
              flips += res.flipped;
              ++runs;
            }
          }
          return res.terminated && res.split;
        });
    const auto [lo, hi] = est.wilson95();
    table.add_row({fmt(staleness, 1), fmt_ci(est.rate(), lo, hi),
                   runs > 0 ? fmt(static_cast<double>(flips) / static_cast<double>(runs), 3)
                            : "-",
                   runs > 0 ? fmt(replaced_sum / static_cast<double>(runs), 2) : "-"});
  }
  h.emit(table,
         "n=12, t=0, lambda=0.5, partition schedule, knife-edge inputs. Synchrony\n"
         "(staleness <= 1 delta) keeps groups agreeing and decisions final;\n"
         "asynchrony splits the groups' decisions and replaces the decided\n"
         "prefix — Theorem 5.1 in action:");
  return 0;
}
