// E5 — Theorem 5.3: Algorithm 5 with deterministic tie-breaking cannot
// solve weak Byzantine agreement for t >= n/3.
//
// The fork-tie-break adversary forks beside every correct chain tip; with
// the worst-case deterministic rule all ties resolve toward the adversary,
// so ~β/(1-β) of the chain is Byzantine at token share β — crossing 1/2
// exactly at β = 1/3. Under the randomized rule the same attack only wins
// half its ties and stalls near 1/3 of the chain.
#include <iostream>

#include "exp/harness.hpp"
#include "exp/montecarlo.hpp"
#include "protocols/chain_ba.hpp"

using namespace amm;

namespace {

struct Row {
  double byz_frac_sum = 0.0;
  usize valid = 0;
  usize runs = 0;
};

Row measure(exp::Harness& h, u32 n, u32 t, bool adversarial_ties) {
  proto::ChainParams params;
  params.scenario.n = n;
  params.scenario.t = t;
  params.k = 61;
  params.lambda = 0.1;  // serialized regime: natural forks are negligible
  params.tie_break =
      adversarial_ties ? chain::TieBreak::kDeterministicFirst : chain::TieBreak::kRandomized;
  params.adversarial_ties = adversarial_ties;
  params.adversary = proto::ChainAdversary::kForkTieBreak;

  std::mutex m;
  Row row;
  exp::collect_stats(h.pool, h.seed ^ (n * 100 + t + (adversarial_ties ? 7 : 0)), h.trials,
                     [&](usize, Rng& rng) {
                       const proto::Outcome out = proto::run_chain_slotted(params, rng);
                       const double frac = out.terminated
                                               ? static_cast<double>(out.byz_in_decision_set) /
                                                     static_cast<double>(out.decision_set_size)
                                               : 0.0;
                       std::scoped_lock lock(m);
                       row.byz_frac_sum += frac;
                       row.valid += out.terminated && out.validity(params.scenario);
                       ++row.runs;
                       return frac;
                     });
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E5 — chain with deterministic tie-breaking (Theorem 5.3)", 300);

  Table table({"n", "t", "t/n", "tie rule", "byz chain frac", "pred frac", "validity rate"});
  const u32 n = 24;
  for (const u32 t : {3u, 5u, 7u, 8u, 9u, 11u}) {
    const double beta = static_cast<double>(t) / n;
    for (const bool adversarial : {true, false}) {
      const Row row = measure(h, n, t, adversarial);
      const double frac = row.byz_frac_sum / static_cast<double>(row.runs);
      // First-order predictions: with worst-case deterministic ties every
      // Byzantine fork both enters the chain and orphans a correct block →
      // share β/(1-β) (hits 1/2 at β = 1/3, Theorem 5.3). With randomized
      // ties only every second fork wins → share β/(2(1-β)).
      const double pred = adversarial ? beta / (1.0 - beta) : beta / (2.0 * (1.0 - beta));
      table.add_row({std::to_string(n), std::to_string(t), fmt(beta, 3),
                     adversarial ? "deterministic (worst-case)" : "randomized",
                     fmt(frac, 3), fmt(std::min(pred, 1.0), 3),
                     fmt(static_cast<double>(row.valid) / static_cast<double>(row.runs), 3)});
    }
  }
  h.emit(table,
         "Paper: with deterministic ties the Byzantine chain share reaches 1/2 at\n"
         "t/n = 1/3 (validity dies there); randomized ties keep the share near 1/3\n"
         "at the same token share:");
  return 0;
}
