// E9 — the headline: "Why BlockDAGs Excel Blockchains".
//
// Head-to-head resilience frontier: same n, same k, same adversarial
// budget, same seeds. For each λ, report the largest Byzantine share each
// structure survives (validity ≥ 90%). The chain's frontier must track
// 1/(1+λ(n−t)) and fall with λ; the DAG's must hug 1/2 for every λ.
#include <iostream>

#include "exp/harness.hpp"
#include "exp/montecarlo.hpp"
#include "protocols/chain_ba.hpp"
#include "protocols/dag_ba.hpp"

using namespace amm;

namespace {

double chain_validity(exp::Harness& h, u32 n, u32 t, double lambda, u32 k) {
  proto::ChainParams params;
  params.scenario.n = n;
  params.scenario.t = t;
  params.k = k;
  params.lambda = lambda;
  params.adversary = proto::ChainAdversary::kRushExtend;
  const auto est = exp::estimate_rate(
      h.pool, h.seed ^ (t * 37 + static_cast<u64>(lambda * 1000)), h.trials,
      [&](usize, Rng& rng) {
        const proto::Outcome out = proto::run_chain_slotted(params, rng);
        return out.terminated && out.validity(params.scenario);
      });
  return est.rate();
}

double dag_validity(exp::Harness& h, u32 n, u32 t, double lambda, u32 k) {
  proto::DagParams params;
  params.scenario.n = n;
  params.scenario.t = t;
  params.k = k;
  params.lambda = lambda;
  params.adversary = proto::DagAdversary::kRateAndWithhold;
  const auto est = exp::estimate_rate(
      h.pool, h.seed ^ (t * 41 + static_cast<u64>(lambda * 1000) + 1), h.trials,
      [&](usize, Rng& rng) {
        const proto::DagResult res = proto::run_dag_continuous(params, rng);
        return res.outcome.terminated && res.outcome.validity(params.scenario);
      });
  return est.rate();
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E9 — chain vs DAG resilience frontier (headline)", 200);

  const u32 n = 20;
  const u32 k = 61;

  Table table({"lambda", "t/n", "lambda*t", "chain validity", "DAG validity", "winner"});
  for (const double lambda : {0.125, 0.25, 0.5, 1.0}) {
    for (const u32 t : {1u, 2u, 4u, 6u, 8u, 9u}) {
      const double cv = chain_validity(h, n, t, lambda, k);
      const double dv = dag_validity(h, n, t, lambda, k);
      const char* winner = dv > cv + 0.1 ? "DAG" : (cv > dv + 0.1 ? "chain" : "tie");
      table.add_row({fmt(lambda, 3), fmt(static_cast<double>(t) / n, 2), fmt(lambda * t, 2),
                     fmt(cv, 2), fmt(dv, 2), winner});
    }
  }
  h.emit(table, "");

  // Frontier summary: max t/n with validity >= 0.9.
  Table frontier({"lambda", "chain frontier t/n", "chain bound 1/(1+l(n-t))", "DAG frontier t/n"});
  for (const double lambda : {0.125, 0.25, 0.5, 1.0}) {
    u32 chain_max = 0, dag_max = 0;
    for (u32 t = 1; t < n / 2; ++t) {
      if (chain_validity(h, n, t, lambda, k) >= 0.9) chain_max = t;
      if (dag_validity(h, n, t, lambda, k) >= 0.9) dag_max = t;
    }
    frontier.add_row(
        {fmt(lambda, 3), fmt(static_cast<double>(chain_max) / n, 2),
         fmt(proto::chain_resilience_bound(n, chain_max == 0 ? 1 : chain_max, lambda), 2),
         fmt(static_cast<double>(dag_max) / n, 2)});
  }
  h.emit(frontier,
         "Resilience frontier (largest t/n with >=90% validity). Paper: the DAG's\n"
         "frontier is ~1/2 for every lambda; the chain's shrinks as lambda grows:");
  return 0;
}
