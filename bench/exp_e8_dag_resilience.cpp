// E8 — Theorem 5.6: Byzantine agreement on the DAG tolerates t < n/2,
// independently of the access rate λ.
//
// Sweep the Byzantine share toward 1/2 for several λ under the strongest
// implemented adversary (rate attack + decision-edge withholding), with
// both ordering rules (GHOST and longest chain). Validity must stay high
// for t/n well below 1/2 and collapse only at the majority boundary —
// with no λ dependence, in sharp contrast to E6's chain.
#include <iostream>

#include "exp/harness.hpp"
#include "exp/montecarlo.hpp"
#include "protocols/dag_ba.hpp"

using namespace amm;

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "E8 — DAG resilience is ~1/2 and rate-independent (Theorem 5.6)",
                 300);

  const u32 n = 20;
  const u32 k = 101;

  Table table({"lambda", "t", "t/n", "validity [95% CI]", "byz frac of cut"});
  for (const double lambda : {0.25, 1.0, 4.0}) {
    for (const u32 t : {2u, 5u, 8u, 9u, 10u, 12u}) {
      proto::DagParams params;
      params.scenario.n = n;
      params.scenario.t = t;
      params.k = k;
      params.lambda = lambda;
      params.adversary = proto::DagAdversary::kRateAndWithhold;

      std::mutex m;
      double frac_sum = 0.0;
      usize runs = 0;
      const auto est = exp::estimate_rate(
          h.pool, h.seed ^ (static_cast<u64>(lambda * 100) * 131 + t), h.trials,
          [&](usize, Rng& rng) {
            const proto::DagResult res = proto::run_dag_continuous(params, rng);
            {
              std::scoped_lock lock(m);
              frac_sum += static_cast<double>(res.outcome.byz_in_decision_set) /
                          static_cast<double>(res.outcome.decision_set_size);
              ++runs;
            }
            return res.outcome.terminated && res.outcome.validity(params.scenario);
          });
      const auto [lo, hi] = est.wilson95();
      table.add_row({fmt(lambda, 2), std::to_string(t), fmt(static_cast<double>(t) / n, 2),
                     fmt_ci(est.rate(), lo, hi),
                     fmt(frac_sum / static_cast<double>(runs), 3)});
    }
  }
  h.emit(table,
         "Rate-and-withhold adversary. Paper: the failure boundary sits at t/n = 1/2\n"
         "for every lambda (compare: the chain in E6 fails at t/n = 1/(1+lambda(n-t))):");

  // Ordering-rule ablation at a fixed operating point.
  Table ablation({"ordering rule", "t", "validity rate"});
  for (const chain::PivotRule rule : {chain::PivotRule::kGhost, chain::PivotRule::kLongestChain}) {
    for (const u32 t : {5u, 8u}) {
      proto::DagParams params;
      params.scenario.n = n;
      params.scenario.t = t;
      params.k = 51;
      params.lambda = 1.0;
      params.pivot_rule = rule;
      params.full_ordering = true;
      params.adversary = proto::DagAdversary::kHonestOpposite;
      const auto est = exp::estimate_rate(
          h.pool, h.seed ^ (t + (rule == chain::PivotRule::kGhost ? 3 : 5)),
          std::min<usize>(h.trials, 30), [&](usize, Rng& rng) {
            return proto::run_dag_continuous(params, rng).outcome.validity(params.scenario);
          });
      ablation.add_row({rule == chain::PivotRule::kGhost ? "GHOST (heaviest)" : "longest chain",
                        std::to_string(t), fmt(est.rate(), 2)});
    }
  }
  h.emit(ablation, "Ordering-rule ablation (exact Algorithm 6 linearization):");
  return 0;
}
