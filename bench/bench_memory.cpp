// Micro-benchmarks for the append-memory substrate: append throughput,
// snapshot reads, historical views and timestamp ordering.
#include <benchmark/benchmark.h>

#include "am/memory.hpp"
#include "support/rng.hpp"

namespace {

using namespace amm;

void BM_Append(benchmark::State& state) {
  const auto n = static_cast<u32>(state.range(0));
  am::AppendMemory memory(n);
  Rng rng(1);
  SimTime now = 0.0;
  for (auto _ : state) {
    now += 1.0;
    const auto author = NodeId{static_cast<u32>(rng.uniform_below(n))};
    benchmark::DoNotOptimize(memory.append(author, Vote::kPlus, 0, {}, now));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_Append)->Arg(4)->Arg(64)->Arg(1024);

void BM_AppendWithRefs(benchmark::State& state) {
  am::AppendMemory memory(16);
  Rng rng(2);
  SimTime now = 1.0;
  am::MsgId prev = memory.append(NodeId{0}, Vote::kPlus, 0, {}, now);
  for (auto _ : state) {
    now += 1.0;
    prev = memory.append(NodeId{static_cast<u32>(rng.uniform_below(16))}, Vote::kPlus, 0, {prev},
                         now);
    benchmark::DoNotOptimize(prev);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_AppendWithRefs);

void BM_SnapshotRead(benchmark::State& state) {
  const auto size = static_cast<u32>(state.range(0));
  am::AppendMemory memory(32);
  Rng rng(3);
  for (u32 i = 0; i < size; ++i) {
    memory.append(NodeId{static_cast<u32>(rng.uniform_below(32))}, Vote::kPlus, 0, {},
                  static_cast<SimTime>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(memory.read());
  }
}
BENCHMARK(BM_SnapshotRead)->Arg(1000)->Arg(100000);

void BM_HistoricalView(benchmark::State& state) {
  am::AppendMemory memory(32);
  Rng rng(4);
  for (u32 i = 0; i < 100'000; ++i) {
    memory.append(NodeId{static_cast<u32>(rng.uniform_below(32))}, Vote::kPlus, 0, {},
                  static_cast<SimTime>(i));
  }
  double t = 0.0;
  for (auto _ : state) {
    t += 997.0;
    if (t > 100'000.0) t -= 100'000.0;
    benchmark::DoNotOptimize(memory.read_at(t));
  }
}
BENCHMARK(BM_HistoricalView);

void BM_ByAppendTime(benchmark::State& state) {
  const auto size = static_cast<u32>(state.range(0));
  am::AppendMemory memory(16);
  Rng rng(5);
  for (u32 i = 0; i < size; ++i) {
    memory.append(NodeId{static_cast<u32>(rng.uniform_below(16))}, Vote::kPlus, 0, {},
                  static_cast<SimTime>(i));
  }
  const am::MemoryView view = memory.read();
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.by_append_time());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * size);
}
BENCHMARK(BM_ByAppendTime)->Arg(1000)->Arg(10000);

void BM_ViewJoin(benchmark::State& state) {
  am::AppendMemory memory(256);
  Rng rng(6);
  for (u32 i = 0; i < 10'000; ++i) {
    memory.append(NodeId{static_cast<u32>(rng.uniform_below(256))}, Vote::kPlus, 0, {},
                  static_cast<SimTime>(i));
  }
  const am::MemoryView a = memory.read_at(3000.0);
  const am::MemoryView b = memory.read_at(7000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.join(b));
    benchmark::DoNotOptimize(a.meet(b));
  }
}
BENCHMARK(BM_ViewJoin);

}  // namespace
